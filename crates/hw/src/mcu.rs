//! The simulated device (MCU / SoC).

use erasmus_sim::{SimDuration, SimTime};

use crate::cost::CostModel;
use crate::error::HwError;
use crate::key::DeviceKey;
use crate::mem::{MemoryMap, RegionKind};
use crate::mpu::{AccessKind, MpuConfig, Subject};
use crate::profile::{DeviceProfile, SecurityArchitecture};
use crate::rom::Rom;
use crate::rroc::Rroc;
use crate::secure_boot::SecureBoot;

/// A simulated prover device.
///
/// The `Mcu` composes the pieces the paper's security argument rests on:
///
/// * application memory — what gets measured, and what malware modifies;
/// * a [`Rom`] holding the attestation code and the device key `K`;
/// * an [`MpuConfig`] that only lets the attestation code read `K`;
/// * a [`Rroc`] providing tamper-proof timestamps;
/// * a [`CostModel`] so operations consume realistic simulated time.
///
/// Untrusted code (the application, and therefore malware) can read and
/// write application memory freely; the key is only reachable inside
/// [`Mcu::run_trusted`], which models entering the ROM-resident / PrAtt
/// attestation code atomically.
///
/// # Example
///
/// ```
/// use erasmus_hw::{DeviceKey, DeviceProfile, Mcu};
///
/// let mut mcu = Mcu::new(DeviceProfile::msp430_8mhz(1024), DeviceKey::from_bytes([1; 32]));
/// // Malware scribbles over application memory…
/// mcu.write_app_memory(0, b"evil payload")?;
/// // …which the next trusted measurement will observe.
/// let digest = mcu.run_trusted(|ctx| ctx.memory_digest())?;
/// assert_eq!(digest.len(), 32);
/// # Ok::<(), erasmus_hw::HwError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Mcu {
    profile: DeviceProfile,
    memory_map: MemoryMap,
    mpu: MpuConfig,
    rom: Rom,
    rroc: Rroc,
    secure_boot: Option<SecureBoot>,
    app_memory: Vec<u8>,
    trusted_invocations: u64,
}

impl Mcu {
    /// Builds a device from a profile and its provisioned key.
    ///
    /// The memory map, MPU rule table and (for HYDRA) secure-boot reference
    /// are derived from the profile's architecture.
    pub fn new(profile: DeviceProfile, key: DeviceKey) -> Self {
        let app_size = profile.app_memory_bytes();
        // Reserve a comfortable measurement store; its exact size does not
        // affect any experiment (the rolling buffer lives in erasmus-core).
        let store_size = 4 * 1024;
        let (memory_map, mpu) = match profile.architecture() {
            SecurityArchitecture::SmartPlus => (
                MemoryMap::smart_plus_layout(app_size, store_size)
                    .expect("smart+ layout never overlaps"),
                MpuConfig::smart_plus(),
            ),
            SecurityArchitecture::Hydra => (
                MemoryMap::hydra_layout(app_size, store_size).expect("hydra layout never overlaps"),
                MpuConfig::hydra(),
            ),
        };
        let rom = Rom::with_synthetic_code(key, 5 * 1024);
        let secure_boot = match profile.architecture() {
            SecurityArchitecture::SmartPlus => None,
            SecurityArchitecture::Hydra => Some(SecureBoot::provision(&rom)),
        };
        Self {
            app_memory: vec![0u8; app_size],
            profile,
            memory_map,
            mpu,
            rom,
            rroc: Rroc::new(),
            secure_boot,
            trusted_invocations: 0,
        }
    }

    /// The device profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    /// The device's cost model.
    pub fn cost_model(&self) -> CostModel {
        CostModel::new(&self.profile)
    }

    /// The memory map (Figure 5 / Figure 7 layout).
    pub fn memory_map(&self) -> &MemoryMap {
        &self.memory_map
    }

    /// The MPU / capability rule table.
    pub fn mpu(&self) -> &MpuConfig {
        &self.mpu
    }

    /// The ROM image (attestation code); the key is not exposed here.
    pub fn rom(&self) -> &Rom {
        &self.rom
    }

    /// The secure-boot verifier, present on HYDRA-class devices.
    pub fn secure_boot(&self) -> Option<&SecureBoot> {
        self.secure_boot.as_ref()
    }

    /// Current RROC reading. Reading the clock is allowed to everyone; only
    /// writing is restricted (there is no API for that at all).
    pub fn rroc_now(&self) -> SimTime {
        self.rroc.now()
    }

    /// Advances device time by `elapsed`. Called by scenario drivers as
    /// simulated time passes.
    pub fn advance_time(&mut self, elapsed: SimDuration) -> SimTime {
        self.rroc.advance(elapsed)
    }

    /// Advances device time to `target` (no-op if already past it).
    pub fn advance_time_to(&mut self, target: SimTime) -> SimTime {
        self.rroc.advance_to(target)
    }

    /// Mutable access to the RROC, exposed only so negative tests can model
    /// the physical clock-rollback attack of Section 3.4.
    pub fn rroc_mut_for_attack(&mut self) -> &mut Rroc {
        &mut self.rroc
    }

    /// Number of times the trusted attestation code has been invoked.
    pub fn trusted_invocations(&self) -> u64 {
        self.trusted_invocations
    }

    /// Size of the application memory in bytes.
    pub fn app_memory_len(&self) -> usize {
        self.app_memory.len()
    }

    /// Read-only view of application memory (untrusted access — allowed).
    pub fn app_memory(&self) -> &[u8] {
        &self.app_memory
    }

    /// Writes `data` into application memory at `offset` as untrusted code
    /// (the application itself, or malware).
    ///
    /// # Errors
    ///
    /// Returns [`HwError::OutOfBounds`] if the write does not fit, or
    /// [`HwError::AccessViolation`] if the MPU forbids application writes
    /// (never the case with the stock rule tables).
    pub fn write_app_memory(&mut self, offset: usize, data: &[u8]) -> Result<(), HwError> {
        self.mpu.check(
            Subject::Application,
            RegionKind::Application,
            AccessKind::Write,
        )?;
        let end = offset.checked_add(data.len()).ok_or(HwError::OutOfBounds {
            offset,
            len: data.len(),
            region_size: self.app_memory.len(),
        })?;
        if end > self.app_memory.len() {
            return Err(HwError::OutOfBounds {
                offset,
                len: data.len(),
                region_size: self.app_memory.len(),
            });
        }
        self.app_memory[offset..end].copy_from_slice(data);
        Ok(())
    }

    /// Fills application memory from an iterator of bytes, truncating or
    /// zero-padding to the memory size. Used to install a "benign software
    /// image" at the start of a scenario.
    pub fn load_app_image<I: IntoIterator<Item = u8>>(&mut self, image: I) {
        let len = self.app_memory.len();
        let mut iter = image.into_iter();
        for slot in self.app_memory.iter_mut().take(len) {
            *slot = iter.next().unwrap_or(0);
        }
    }

    /// Runs `body` inside the trusted attestation context (ROM code on
    /// SMART+, the PrAtt process on HYDRA).
    ///
    /// The closure receives a [`TrustedContext`] giving read access to the
    /// key, the application memory and the RROC — the three things the
    /// measurement code needs. The MPU table is consulted first, so a
    /// mis-configured device (e.g. [`MpuConfig::deny_all`]) refuses to
    /// produce measurements, mirroring how the hardware would fault.
    ///
    /// On HYDRA the secure-boot check must have passed at provisioning time;
    /// this is re-validated on every entry to catch tests that tamper with
    /// the ROM image.
    ///
    /// # Errors
    ///
    /// Returns [`HwError::AccessViolation`] if the rule table does not allow
    /// the attestation code to read the key and application memory, or
    /// [`HwError::SecureBootFailure`] if the HYDRA image check fails.
    pub fn run_trusted<F, R>(&mut self, body: F) -> Result<R, HwError>
    where
        F: FnOnce(&TrustedContext<'_>) -> R,
    {
        self.check_trusted_entry()?;
        self.trusted_invocations += 1;
        let ctx = TrustedContext {
            key: self.rom.key(),
            app_memory: &self.app_memory,
            now: self.rroc.now(),
        };
        Ok(body(&ctx))
    }

    /// The MPU and secure-boot gate shared by every trusted entry point.
    fn check_trusted_entry(&self) -> Result<(), HwError> {
        self.mpu
            .check(Subject::AttestationCode, RegionKind::Key, AccessKind::Read)?;
        self.mpu.check(
            Subject::AttestationCode,
            RegionKind::Application,
            AccessKind::Read,
        )?;
        self.mpu.check(
            Subject::AttestationCode,
            RegionKind::Peripheral,
            AccessKind::Read,
        )?;
        if let Some(boot) = &self.secure_boot {
            boot.verify(&self.rom)?;
        }
        Ok(())
    }

    /// Checks whether the trusted attestation context *could* be entered —
    /// the [`Mcu::run_trusted`] gate without the invocation accounting.
    /// Batch drivers use this to make a multi-device measurement
    /// all-or-nothing: every device is gated before any device commits.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`Mcu::run_trusted`].
    pub fn trusted_entry_allowed(&self) -> Result<(), HwError> {
        self.check_trusted_entry()
    }

    /// Enters the trusted attestation context without running a closure:
    /// the same MPU rule-table and secure-boot gate as [`Mcu::run_trusted`],
    /// and the same invocation accounting — but the caller reads the device
    /// state through the public accessors afterwards instead of through a
    /// [`TrustedContext`].
    ///
    /// This exists for the lane-batched measurement path, which must hold
    /// several devices' memory views *simultaneously* to hash them in
    /// lockstep — a per-device closure cannot express that. The key never
    /// leaves the ROM on this path: batched measurements ride the
    /// precomputed per-device MAC schedules derived at provisioning.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`Mcu::run_trusted`].
    pub fn enter_trusted(&mut self) -> Result<(), HwError> {
        self.check_trusted_entry()?;
        self.trusted_invocations += 1;
        Ok(())
    }

    /// Replaces the MPU configuration. Exists so tests can demonstrate what
    /// breaks when the access rules are wrong; production code keeps the
    /// architecture defaults.
    pub fn set_mpu(&mut self, mpu: MpuConfig) {
        self.mpu = mpu;
    }
}

/// Read-only view handed to code running inside the trusted measurement
/// context.
#[derive(Debug)]
pub struct TrustedContext<'a> {
    key: &'a DeviceKey,
    app_memory: &'a [u8],
    now: SimTime,
}

impl TrustedContext<'_> {
    /// The device key bytes (only reachable here).
    pub fn key_bytes(&self) -> &[u8] {
        self.key.as_bytes()
    }

    /// The application memory image to be measured.
    pub fn memory(&self) -> &[u8] {
        self.app_memory
    }

    /// RROC reading at entry into the trusted code.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Convenience: SHA-256 digest of the application memory, `H(mem_t)`,
    /// returned on the stack.
    pub fn memory_digest(&self) -> [u8; 32] {
        use erasmus_crypto::{Digest, Sha256};
        Sha256::digest(self.app_memory)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use erasmus_crypto::MacAlgorithm;

    fn device() -> Mcu {
        Mcu::new(
            DeviceProfile::msp430_8mhz(1024),
            DeviceKey::from_bytes([7; 32]),
        )
    }

    #[test]
    fn construction_reflects_architecture() {
        let smart = device();
        assert!(smart.secure_boot().is_none());
        assert_eq!(smart.app_memory_len(), 1024);
        assert_eq!(
            smart
                .memory_map()
                .region(RegionKind::Application)
                .map(|r| r.size),
            Some(1024)
        );

        let hydra = Mcu::new(
            DeviceProfile::imx6_sabre_lite(2048),
            DeviceKey::from_bytes([7; 32]),
        );
        assert!(hydra.secure_boot().is_some());
        assert_eq!(hydra.profile().architecture(), SecurityArchitecture::Hydra);
    }

    #[test]
    fn untrusted_writes_are_bounded() {
        let mut mcu = device();
        assert!(mcu.write_app_memory(0, &[1, 2, 3]).is_ok());
        assert_eq!(&mcu.app_memory()[..3], &[1, 2, 3]);
        let err = mcu.write_app_memory(1020, &[0; 10]).unwrap_err();
        assert!(matches!(err, HwError::OutOfBounds { .. }));
    }

    #[test]
    fn load_app_image_pads_and_truncates() {
        let mut mcu = device();
        mcu.load_app_image([0xaa; 10]);
        assert_eq!(mcu.app_memory()[9], 0xaa);
        assert_eq!(mcu.app_memory()[10], 0);
        mcu.load_app_image(std::iter::repeat_n(0xbb, 5000));
        assert_eq!(mcu.app_memory().len(), 1024);
        assert!(mcu.app_memory().iter().all(|&b| b == 0xbb));
    }

    #[test]
    fn trusted_context_exposes_key_memory_and_clock() {
        let mut mcu = device();
        mcu.advance_time(SimDuration::from_secs(42));
        mcu.write_app_memory(0, b"state").expect("write");
        let (tag, now) = mcu
            .run_trusted(|ctx| {
                assert_eq!(ctx.key_bytes(), &[7u8; 32]);
                (
                    MacAlgorithm::HmacSha256.mac(ctx.key_bytes(), ctx.memory()),
                    ctx.now(),
                )
            })
            .expect("trusted execution");
        assert_eq!(tag.len(), 32);
        assert_eq!(now, SimTime::from_secs(42));
        assert_eq!(mcu.trusted_invocations(), 1);
    }

    #[test]
    fn memory_digest_changes_when_memory_changes() {
        let mut mcu = device();
        let before = mcu.run_trusted(|ctx| ctx.memory_digest()).expect("digest");
        mcu.write_app_memory(100, b"malware").expect("write");
        let after = mcu.run_trusted(|ctx| ctx.memory_digest()).expect("digest");
        assert_ne!(before, after);
    }

    #[test]
    fn deny_all_mpu_blocks_trusted_execution() {
        let mut mcu = device();
        mcu.set_mpu(MpuConfig::deny_all());
        let err = mcu.run_trusted(|_| ()).unwrap_err();
        assert!(matches!(err, HwError::AccessViolation { .. }));
    }

    #[test]
    fn enter_trusted_shares_the_run_trusted_gate_and_accounting() {
        let mut mcu = device();
        mcu.enter_trusted().expect("entry allowed");
        assert_eq!(mcu.trusted_invocations(), 1);
        mcu.run_trusted(|_| ()).expect("closure entry allowed");
        assert_eq!(mcu.trusted_invocations(), 2);
        // The batch entry is gated by the same MPU rule table.
        mcu.set_mpu(MpuConfig::deny_all());
        let err = mcu.enter_trusted().unwrap_err();
        assert!(matches!(err, HwError::AccessViolation { .. }));
        assert_eq!(mcu.trusted_invocations(), 2);
    }

    #[test]
    fn rroc_only_moves_forward_through_public_api() {
        let mut mcu = device();
        mcu.advance_time(SimDuration::from_secs(10));
        mcu.advance_time_to(SimTime::from_secs(5)); // no-op
        assert_eq!(mcu.rroc_now(), SimTime::from_secs(10));
        mcu.advance_time_to(SimTime::from_secs(20));
        assert_eq!(mcu.rroc_now(), SimTime::from_secs(20));
    }

    #[test]
    fn cost_model_is_derived_from_profile() {
        let mcu = device();
        let cost = mcu.cost_model();
        assert_eq!(cost.profile().clock_hz(), 8_000_000);
    }
}
