//! The device attestation key `K`.

use std::fmt;

use erasmus_crypto::HmacDrbg;

/// The symmetric key shared between prover and verifier.
///
/// On SMART+ the key lives in ROM and is readable only by the ROM-resident
/// attestation code; on HYDRA it is owned exclusively by the `PrAtt` process.
/// The [`Debug`]/[`std::fmt::Display`] implementations never print the key material.
///
/// # Example
///
/// ```
/// use erasmus_hw::DeviceKey;
///
/// let key = DeviceKey::from_bytes([0x42; 32]);
/// assert_eq!(key.as_bytes().len(), 32);
/// // Debug output is redacted:
/// assert_eq!(format!("{key:?}"), "DeviceKey(..redacted..)");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct DeviceKey {
    bytes: [u8; 32],
}

impl DeviceKey {
    /// Key length in bytes.
    pub const LEN: usize = 32;

    /// Wraps raw key bytes.
    pub fn from_bytes(bytes: [u8; 32]) -> Self {
        Self { bytes }
    }

    /// Derives a per-device key from a deployment master seed and a device
    /// identifier, the way a fleet operator would provision keys.
    pub fn derive(master_seed: &[u8], device_id: u64) -> Self {
        let mut drbg = HmacDrbg::new(master_seed, b"erasmus-device-key");
        drbg.reseed(&device_id.to_be_bytes());
        let material = drbg.generate(32);
        let mut bytes = [0u8; 32];
        bytes.copy_from_slice(&material);
        Self { bytes }
    }

    /// Borrows the raw key bytes.
    ///
    /// In the real architectures this is only possible from within the
    /// attestation code; in the simulation the type-level guard is
    /// [`crate::Mcu::run_trusted`], and verifier-side code (which legitimately
    /// holds a copy of `K`) uses this accessor directly.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }
}

impl fmt::Debug for DeviceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("DeviceKey(..redacted..)")
    }
}

impl fmt::Display for DeviceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("DeviceKey(..redacted..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_roundtrip() {
        let key = DeviceKey::from_bytes([9u8; 32]);
        assert_eq!(key.as_bytes(), &[9u8; 32]);
    }

    #[test]
    fn derive_is_deterministic_and_per_device() {
        let a1 = DeviceKey::derive(b"master", 1);
        let a2 = DeviceKey::derive(b"master", 1);
        let b = DeviceKey::derive(b"master", 2);
        let c = DeviceKey::derive(b"other-master", 1);
        assert_eq!(a1, a2);
        assert_ne!(a1, b);
        assert_ne!(a1, c);
    }

    #[test]
    fn debug_and_display_are_redacted() {
        let key = DeviceKey::from_bytes([0xffu8; 32]);
        assert!(!format!("{key:?}").contains("ff"));
        assert!(!key.to_string().contains("ff"));
    }
}
