//! Executable-size and hardware-cost models (Table 1 and Section 4.1).
//!
//! The paper reports the size of the attestation executable for every
//! combination of MAC algorithm, security architecture and RA mode
//! (Table 1), plus the FPGA synthesis overhead of the SMART+ hardware
//! modifications (Section 4.1: 655 vs. 579 registers and 1,969 vs. 1,731
//! look-up tables). Rebuilding those binaries needs the authors' msp430-gcc
//! and seL4 build trees, so this module substitutes a *compositional* model:
//! each executable is the sum of its components (measurement core, MAC
//! implementation, request-authentication code, timer driver, seL4
//! libraries), with component sizes calibrated so the composed totals match
//! Table 1. The relative claims the paper draws from the table — ERASMUS
//! needs slightly *less* ROM than on-demand on SMART+, and only ~1 % more
//! space on HYDRA — fall out of the composition.

use std::fmt;

use erasmus_crypto::MacAlgorithm;

use crate::profile::SecurityArchitecture;

/// Which RA flavour the executable implements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RaMode {
    /// Classic on-demand attestation (SMART+/HYDRA as published).
    OnDemand,
    /// ERASMUS self-measurement.
    Erasmus,
}

impl RaMode {
    /// Both modes, in Table 1 column order.
    pub const ALL: [RaMode; 2] = [RaMode::OnDemand, RaMode::Erasmus];

    /// Name as used in the paper's tables.
    pub fn paper_name(self) -> &'static str {
        match self {
            RaMode::OnDemand => "On-Demand",
            RaMode::Erasmus => "ERASMUS",
        }
    }
}

impl fmt::Display for RaMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// The size of one attestation executable, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ExecutableSize {
    bytes: usize,
}

impl ExecutableSize {
    /// Wraps a size in bytes.
    pub fn from_bytes(bytes: usize) -> Self {
        Self { bytes }
    }

    /// Size in bytes.
    pub fn as_bytes(self) -> usize {
        self.bytes
    }

    /// Size in binary kilobytes, the unit Table 1 uses.
    pub fn as_kib(self) -> f64 {
        self.bytes as f64 / 1024.0
    }
}

impl fmt::Display for ExecutableSize {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}KB", self.as_kib())
    }
}

/// Component sizes (bytes) used to compose Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Components {
    /// Measurement core: hash loop over memory, buffer management,
    /// scheduling glue.
    measurement_core: usize,
    /// Verifier-request authentication and freshness checking (on-demand and
    /// ERASMUS+OD only).
    request_auth: usize,
    /// Extra timer driver needed by ERASMUS on HYDRA (Section 4.2 attributes
    /// its ~1 % size overhead to this).
    timer_driver: usize,
    /// Per-MAC code sizes.
    hmac_sha1: usize,
    hmac_sha256: usize,
    blake2s: usize,
    /// Platform baseline outside the attestation logic proper (zero on
    /// SMART+, the seL4 libraries + network stack on HYDRA).
    platform_base: usize,
}

/// Executable-size model reproducing Table 1.
///
/// # Example
///
/// ```
/// use erasmus_crypto::MacAlgorithm;
/// use erasmus_hw::{CodeSizeModel, RaMode, SecurityArchitecture};
///
/// let model = CodeSizeModel::calibrated();
/// let size = model
///     .executable_size(SecurityArchitecture::SmartPlus, RaMode::Erasmus, MacAlgorithm::HmacSha256)
///     .expect("SMART+ supports HMAC-SHA256");
/// // Table 1 reports 4.9 KB for this cell.
/// assert!((size.as_kib() - 4.9).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodeSizeModel {
    smart_plus: Components,
    hydra: Components,
}

impl CodeSizeModel {
    /// The calibration used throughout the workspace.
    pub fn calibrated() -> Self {
        Self {
            smart_plus: Components {
                measurement_core: 2_048,
                request_auth: 205,
                timer_driver: 0, // the MSP430 timer is driven by existing ROM code
                hmac_sha1: 2_765,
                hmac_sha256: 2_970,
                blake2s: 27_341,
                platform_base: 0,
            },
            hydra: Components {
                measurement_core: 2_048,
                request_auth: 205,
                timer_driver: 2_130,
                hmac_sha1: 2_560,
                hmac_sha256: 2_970,
                blake2s: 10_476,
                platform_base: 232_305,
            },
        }
    }

    fn components(&self, arch: SecurityArchitecture) -> &Components {
        match arch {
            SecurityArchitecture::SmartPlus => &self.smart_plus,
            SecurityArchitecture::Hydra => &self.hydra,
        }
    }

    /// Size of the attestation executable for one Table 1 cell.
    ///
    /// Returns `None` for the combination the paper leaves blank
    /// (HMAC-SHA1 on HYDRA).
    pub fn executable_size(
        &self,
        arch: SecurityArchitecture,
        mode: RaMode,
        alg: MacAlgorithm,
    ) -> Option<ExecutableSize> {
        if arch == SecurityArchitecture::Hydra && alg == MacAlgorithm::HmacSha1 {
            // Table 1 does not report HMAC-SHA1 on HYDRA.
            return None;
        }
        let c = self.components(arch);
        let mac = match alg {
            MacAlgorithm::HmacSha1 => c.hmac_sha1,
            MacAlgorithm::HmacSha256 => c.hmac_sha256,
            MacAlgorithm::KeyedBlake2s => c.blake2s,
        };
        let mode_specific = match mode {
            RaMode::OnDemand => c.request_auth,
            RaMode::Erasmus => c.timer_driver,
        };
        Some(ExecutableSize::from_bytes(
            c.platform_base + c.measurement_core + mac + mode_specific,
        ))
    }

    /// All Table 1 rows: `(algorithm, architecture, mode, size)`.
    pub fn table1(
        &self,
    ) -> Vec<(
        MacAlgorithm,
        SecurityArchitecture,
        RaMode,
        Option<ExecutableSize>,
    )> {
        let mut rows = Vec::new();
        for alg in MacAlgorithm::ALL {
            for arch in SecurityArchitecture::ALL {
                for mode in RaMode::ALL {
                    rows.push((alg, arch, mode, self.executable_size(arch, mode, alg)));
                }
            }
        }
        rows
    }
}

impl Default for CodeSizeModel {
    fn default() -> Self {
        Self::calibrated()
    }
}

/// FPGA synthesis cost of the SMART+/ERASMUS hardware support
/// (Section 4.1).
///
/// # Example
///
/// ```
/// use erasmus_hw::HardwareCost;
///
/// let cost = HardwareCost::openmsp430_erasmus();
/// assert_eq!(cost.registers(), 655);
/// assert!((cost.register_overhead_percent() - 13.1).abs() < 0.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HardwareCost {
    baseline_registers: u32,
    baseline_luts: u32,
    added_registers: u32,
    added_luts: u32,
}

impl HardwareCost {
    /// The unmodified OpenMSP430 core versus the core extended for
    /// SMART+/ERASMUS (same cost for both modes, as the paper reports).
    pub fn openmsp430_erasmus() -> Self {
        Self {
            baseline_registers: 579,
            baseline_luts: 1_731,
            added_registers: 76,
            added_luts: 238,
        }
    }

    /// Registers of the unmodified core.
    pub fn baseline_registers(&self) -> u32 {
        self.baseline_registers
    }

    /// Look-up tables of the unmodified core.
    pub fn baseline_luts(&self) -> u32 {
        self.baseline_luts
    }

    /// Registers of the extended core.
    pub fn registers(&self) -> u32 {
        self.baseline_registers + self.added_registers
    }

    /// Look-up tables of the extended core.
    pub fn luts(&self) -> u32 {
        self.baseline_luts + self.added_luts
    }

    /// Register overhead in percent.
    pub fn register_overhead_percent(&self) -> f64 {
        self.added_registers as f64 / self.baseline_registers as f64 * 100.0
    }

    /// LUT overhead in percent.
    pub fn lut_overhead_percent(&self) -> f64 {
        self.added_luts as f64 / self.baseline_luts as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Expected Table 1 values in KB: (alg, arch, on_demand, erasmus).
    const TABLE1: [(MacAlgorithm, SecurityArchitecture, Option<f64>, Option<f64>); 6] = [
        (
            MacAlgorithm::HmacSha1,
            SecurityArchitecture::SmartPlus,
            Some(4.9),
            Some(4.7),
        ),
        (
            MacAlgorithm::HmacSha1,
            SecurityArchitecture::Hydra,
            None,
            None,
        ),
        (
            MacAlgorithm::HmacSha256,
            SecurityArchitecture::SmartPlus,
            Some(5.1),
            Some(4.9),
        ),
        (
            MacAlgorithm::HmacSha256,
            SecurityArchitecture::Hydra,
            Some(231.96),
            Some(233.84),
        ),
        (
            MacAlgorithm::KeyedBlake2s,
            SecurityArchitecture::SmartPlus,
            Some(28.9),
            Some(28.7),
        ),
        (
            MacAlgorithm::KeyedBlake2s,
            SecurityArchitecture::Hydra,
            Some(239.29),
            Some(241.17),
        ),
    ];

    #[test]
    fn reproduces_table1_within_tolerance() {
        let model = CodeSizeModel::calibrated();
        for (alg, arch, od_expected, erasmus_expected) in TABLE1 {
            let od = model.executable_size(arch, RaMode::OnDemand, alg);
            let erasmus = model.executable_size(arch, RaMode::Erasmus, alg);
            match od_expected {
                Some(expected) => {
                    let got = od.expect("size present").as_kib();
                    assert!(
                        (got - expected).abs() < 0.05,
                        "{alg} {arch} on-demand: got {got:.2}, expected {expected}"
                    );
                }
                None => assert!(od.is_none()),
            }
            match erasmus_expected {
                Some(expected) => {
                    let got = erasmus.expect("size present").as_kib();
                    assert!(
                        (got - expected).abs() < 0.05,
                        "{alg} {arch} ERASMUS: got {got:.2}, expected {expected}"
                    );
                }
                None => assert!(erasmus.is_none()),
            }
        }
    }

    #[test]
    fn erasmus_needs_less_rom_than_on_demand_on_smart_plus() {
        let model = CodeSizeModel::calibrated();
        for alg in MacAlgorithm::ALL {
            let od = model
                .executable_size(SecurityArchitecture::SmartPlus, RaMode::OnDemand, alg)
                .expect("present");
            let erasmus = model
                .executable_size(SecurityArchitecture::SmartPlus, RaMode::Erasmus, alg)
                .expect("present");
            assert!(erasmus < od, "{alg}");
        }
    }

    #[test]
    fn erasmus_overhead_on_hydra_is_about_one_percent() {
        let model = CodeSizeModel::calibrated();
        for alg in [MacAlgorithm::HmacSha256, MacAlgorithm::KeyedBlake2s] {
            let od = model
                .executable_size(SecurityArchitecture::Hydra, RaMode::OnDemand, alg)
                .expect("present")
                .as_bytes() as f64;
            let erasmus = model
                .executable_size(SecurityArchitecture::Hydra, RaMode::Erasmus, alg)
                .expect("present")
                .as_bytes() as f64;
            let overhead = (erasmus - od) / od * 100.0;
            assert!(overhead > 0.0 && overhead < 1.5, "{alg}: {overhead:.2}%");
        }
    }

    #[test]
    fn table1_enumerates_all_cells() {
        let rows = CodeSizeModel::calibrated().table1();
        assert_eq!(rows.len(), 3 * 2 * 2);
        let absent = rows.iter().filter(|(_, _, _, size)| size.is_none()).count();
        assert_eq!(absent, 2); // HMAC-SHA1 × HYDRA × {OnDemand, ERASMUS}
    }

    #[test]
    fn executable_size_formatting() {
        let size = ExecutableSize::from_bytes(5 * 1024);
        assert_eq!(size.as_bytes(), 5 * 1024);
        assert_eq!(size.to_string(), "5.00KB");
    }

    #[test]
    fn hardware_cost_matches_section_4_1() {
        let cost = HardwareCost::openmsp430_erasmus();
        assert_eq!(cost.registers(), 655);
        assert_eq!(cost.luts(), 1_969);
        assert_eq!(cost.baseline_registers(), 579);
        assert_eq!(cost.baseline_luts(), 1_731);
        // Paper: "roughly 13% and 14% additional registers and look-up tables".
        assert!((cost.register_overhead_percent() - 13.0).abs() < 1.0);
        assert!((cost.lut_overhead_percent() - 14.0).abs() < 1.0);
    }

    #[test]
    fn ra_mode_names() {
        assert_eq!(RaMode::OnDemand.to_string(), "On-Demand");
        assert_eq!(RaMode::Erasmus.to_string(), "ERASMUS");
        assert_eq!(RaMode::ALL.len(), 2);
    }
}
