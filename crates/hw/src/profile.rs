//! Device profiles: the two evaluation platforms of the paper.
//!
//! * [`DeviceProfile::msp430_8mhz`] — the SMART+ platform: an OpenMSP430
//!   core clocked at 8 MHz (Figure 6, Table 1 left half, Section 4.1).
//! * [`DeviceProfile::imx6_sabre_lite`] — the HYDRA platform: an i.MX6
//!   Sabre Lite at 1 GHz running seL4 (Figure 8, Tables 1 and 2,
//!   Section 4.2).
//!
//! The per-byte MAC costs are calibrated so the reproduced curves match the
//! paper's reported shapes: ~7 s to measure 10 KB with HMAC-SHA256 on the
//! MSP430, and 285.6 ms to measure 10 MB with keyed BLAKE2s on the i.MX6
//! (Table 2).

use std::fmt;

use erasmus_crypto::MacAlgorithm;

/// The hybrid security architecture a device is built on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SecurityArchitecture {
    /// SMART+ (SMART extended with verifier-request authentication and an
    /// RROC) — ROM-resident attestation code for low-end MCUs.
    SmartPlus,
    /// HYDRA — seL4-based attestation process for medium-end devices with an
    /// MMU.
    Hydra,
}

impl SecurityArchitecture {
    /// Both architectures, in the order of Table 1.
    pub const ALL: [SecurityArchitecture; 2] =
        [SecurityArchitecture::SmartPlus, SecurityArchitecture::Hydra];

    /// Name as used in the paper's tables.
    pub fn paper_name(self) -> &'static str {
        match self {
            SecurityArchitecture::SmartPlus => "SMART+",
            SecurityArchitecture::Hydra => "HYDRA",
        }
    }
}

impl fmt::Display for SecurityArchitecture {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// Calibrated performance and size constants of one evaluation platform.
///
/// # Example
///
/// ```
/// use erasmus_hw::{DeviceProfile, SecurityArchitecture};
///
/// let msp430 = DeviceProfile::msp430_8mhz(10 * 1024);
/// assert_eq!(msp430.architecture(), SecurityArchitecture::SmartPlus);
/// assert_eq!(msp430.clock_hz(), 8_000_000);
/// assert_eq!(msp430.app_memory_bytes(), 10 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    name: String,
    architecture: SecurityArchitecture,
    clock_hz: u64,
    app_memory_bytes: usize,
    /// MAC throughput cost in CPU cycles per byte of measured memory.
    hmac_sha1_cycles_per_byte: f64,
    hmac_sha256_cycles_per_byte: f64,
    blake2s_cycles_per_byte: f64,
    /// Fixed per-measurement overhead (MAC of the timestamped digest, buffer
    /// slot write, scheduling bookkeeping), in cycles.
    measurement_overhead_cycles: u64,
    /// Fixed part of verifying an authenticated verifier request (nonce /
    /// freshness check), in cycles; the MAC over the request itself is
    /// charged per byte on top of this.
    request_auth_overhead_cycles: u64,
    /// Size of an authenticated attestation request in bytes.
    request_bytes: usize,
    /// Cycles to construct an outgoing UDP packet.
    packet_construct_cycles: u64,
    /// Cycles to hand a packet to the network interface.
    packet_send_cycles: u64,
    /// Extra cycles per payload byte when constructing/sending.
    packet_per_byte_cycles: f64,
    /// Cycles to read one stored measurement out of the rolling buffer.
    buffer_read_cycles_per_entry: u64,
}

impl DeviceProfile {
    /// The SMART+ evaluation platform: OpenMSP430 at 8 MHz with
    /// `app_memory_bytes` of measured memory (the paper sweeps 0–10 KB).
    pub fn msp430_8mhz(app_memory_bytes: usize) -> Self {
        Self {
            name: "MSP430 @ 8 MHz (SMART+)".to_owned(),
            architecture: SecurityArchitecture::SmartPlus,
            clock_hz: 8_000_000,
            app_memory_bytes,
            // Calibrated: HMAC-SHA256 over 10 KB ≈ 7 s at 8 MHz (Fig. 6 / §5).
            hmac_sha1_cycles_per_byte: 4_800.0,
            hmac_sha256_cycles_per_byte: 5_444.0,
            blake2s_cycles_per_byte: 3_491.0,
            measurement_overhead_cycles: 250_000,
            request_auth_overhead_cycles: 20_000,
            request_bytes: 64,
            packet_construct_cycles: 2_000,
            packet_send_cycles: 8_000,
            packet_per_byte_cycles: 2.0,
            buffer_read_cycles_per_entry: 500,
        }
    }

    /// The HYDRA evaluation platform: i.MX6 Sabre Lite at 1 GHz running seL4
    /// with `app_memory_bytes` of measured memory (the paper sweeps 0–10 MB).
    pub fn imx6_sabre_lite(app_memory_bytes: usize) -> Self {
        Self {
            name: "i.MX6 Sabre Lite @ 1 GHz (HYDRA)".to_owned(),
            architecture: SecurityArchitecture::Hydra,
            clock_hz: 1_000_000_000,
            app_memory_bytes,
            hmac_sha1_cycles_per_byte: 35.0,
            // Calibrated: Fig. 8 shows ~0.5 s for 10 MB with HMAC-SHA256.
            hmac_sha256_cycles_per_byte: 50.0,
            // Calibrated: Table 2 reports 285.6 ms for 10 MB with keyed BLAKE2s.
            blake2s_cycles_per_byte: 27.22,
            measurement_overhead_cycles: 200_000,
            request_auth_overhead_cycles: 1_800,
            request_bytes: 64,
            // Table 2: construct UDP packet 0.003 ms, send UDP packet 0.012 ms.
            packet_construct_cycles: 3_000,
            packet_send_cycles: 12_000,
            packet_per_byte_cycles: 0.5,
            buffer_read_cycles_per_entry: 100,
        }
    }

    /// Returns a copy of the profile with a different measured-memory size
    /// (used by the Figure 6/8 memory sweeps).
    pub fn with_app_memory(&self, app_memory_bytes: usize) -> Self {
        let mut profile = self.clone();
        profile.app_memory_bytes = app_memory_bytes;
        profile
    }

    /// Human-readable platform name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The security architecture this platform implements.
    pub fn architecture(&self) -> SecurityArchitecture {
        self.architecture
    }

    /// CPU clock frequency in Hz.
    pub fn clock_hz(&self) -> u64 {
        self.clock_hz
    }

    /// Size of the measured application memory in bytes.
    pub fn app_memory_bytes(&self) -> usize {
        self.app_memory_bytes
    }

    /// Cycles per byte for the given MAC algorithm on this platform.
    pub fn mac_cycles_per_byte(&self, alg: MacAlgorithm) -> f64 {
        match alg {
            MacAlgorithm::HmacSha1 => self.hmac_sha1_cycles_per_byte,
            MacAlgorithm::HmacSha256 => self.hmac_sha256_cycles_per_byte,
            MacAlgorithm::KeyedBlake2s => self.blake2s_cycles_per_byte,
        }
    }

    /// Fixed per-measurement overhead in cycles.
    pub fn measurement_overhead_cycles(&self) -> u64 {
        self.measurement_overhead_cycles
    }

    /// Fixed request-authentication overhead in cycles (on-demand and
    /// ERASMUS+OD only).
    pub fn request_auth_overhead_cycles(&self) -> u64 {
        self.request_auth_overhead_cycles
    }

    /// Size of an authenticated attestation request in bytes.
    pub fn request_bytes(&self) -> usize {
        self.request_bytes
    }

    /// Cycles to construct an outgoing packet (before payload-dependent cost).
    pub fn packet_construct_cycles(&self) -> u64 {
        self.packet_construct_cycles
    }

    /// Cycles to hand a packet to the network interface (before
    /// payload-dependent cost).
    pub fn packet_send_cycles(&self) -> u64 {
        self.packet_send_cycles
    }

    /// Extra cycles per payload byte for packet construction/transmission.
    pub fn packet_per_byte_cycles(&self) -> f64 {
        self.packet_per_byte_cycles
    }

    /// Cycles to read one measurement entry from the rolling buffer.
    pub fn buffer_read_cycles_per_entry(&self) -> u64 {
        self.buffer_read_cycles_per_entry
    }
}

impl fmt::Display for DeviceProfile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({} B app memory)", self.name, self.app_memory_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn msp430_profile_constants() {
        let p = DeviceProfile::msp430_8mhz(10 * 1024);
        assert_eq!(p.architecture(), SecurityArchitecture::SmartPlus);
        assert_eq!(p.clock_hz(), 8_000_000);
        assert_eq!(p.app_memory_bytes(), 10 * 1024);
        assert!(
            p.mac_cycles_per_byte(MacAlgorithm::HmacSha256)
                > p.mac_cycles_per_byte(MacAlgorithm::KeyedBlake2s)
        );
        assert!(p.name().contains("MSP430"));
    }

    #[test]
    fn imx6_profile_constants() {
        let p = DeviceProfile::imx6_sabre_lite(10 * 1024 * 1024);
        assert_eq!(p.architecture(), SecurityArchitecture::Hydra);
        assert_eq!(p.clock_hz(), 1_000_000_000);
        // The 1 GHz platform is orders of magnitude faster per byte.
        assert!(p.mac_cycles_per_byte(MacAlgorithm::HmacSha256) < 100.0);
        assert!(p.to_string().contains("i.MX6"));
    }

    #[test]
    fn with_app_memory_only_changes_size() {
        let base = DeviceProfile::msp430_8mhz(1024);
        let bigger = base.with_app_memory(8192);
        assert_eq!(bigger.app_memory_bytes(), 8192);
        assert_eq!(bigger.clock_hz(), base.clock_hz());
        assert_eq!(bigger.architecture(), base.architecture());
    }

    #[test]
    fn architecture_display() {
        assert_eq!(SecurityArchitecture::SmartPlus.to_string(), "SMART+");
        assert_eq!(SecurityArchitecture::Hydra.to_string(), "HYDRA");
        assert_eq!(SecurityArchitecture::ALL.len(), 2);
    }

    #[test]
    fn msp430_headline_calibration() {
        // §5: "7 seconds on an 8-MHz device with 10KB RAM" (HMAC-SHA256).
        let p = DeviceProfile::msp430_8mhz(10 * 1024);
        let cycles = p.mac_cycles_per_byte(MacAlgorithm::HmacSha256) * (10.0 * 1024.0)
            + p.measurement_overhead_cycles() as f64;
        let seconds = cycles / p.clock_hz() as f64;
        assert!(
            (seconds - 7.0).abs() < 0.1,
            "calibration drifted: {seconds} s"
        );
    }

    #[test]
    fn imx6_headline_calibration() {
        // Table 2: 285.6 ms for 10 MB with keyed BLAKE2s.
        let p = DeviceProfile::imx6_sabre_lite(10 * 1024 * 1024);
        let cycles = p.mac_cycles_per_byte(MacAlgorithm::KeyedBlake2s) * (10.0 * 1024.0 * 1024.0)
            + p.measurement_overhead_cycles() as f64;
        let millis = cycles / p.clock_hz() as f64 * 1e3;
        assert!(
            (millis - 285.6).abs() < 1.0,
            "calibration drifted: {millis} ms"
        );
    }
}
