//! Cycle-cost model: converts attestation work into simulated time.
//!
//! The paper's run-time results (Figures 6 and 8, Table 2) are linear in the
//! amount of memory measured, with platform- and algorithm-specific slopes
//! plus fixed per-operation overheads. [`CostModel`] encodes exactly that
//! model using the constants from [`DeviceProfile`], so the benchmark harness
//! can regenerate the paper's curves and tables on simulated hardware.

use erasmus_crypto::MacAlgorithm;
use erasmus_sim::SimDuration;

use crate::profile::DeviceProfile;

/// Converts operation descriptions into [`SimDuration`]s for one device.
///
/// # Example
///
/// ```
/// use erasmus_crypto::MacAlgorithm;
/// use erasmus_hw::{CostModel, DeviceProfile};
///
/// let profile = DeviceProfile::imx6_sabre_lite(10 * 1024 * 1024);
/// let cost = CostModel::new(&profile);
/// let t = cost.measurement(10 * 1024 * 1024, MacAlgorithm::KeyedBlake2s);
/// // Table 2 of the paper reports 285.6 ms for this operation.
/// assert!((t.as_millis_f64() - 285.6).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    profile: DeviceProfile,
}

impl CostModel {
    /// Creates a cost model for the given device profile.
    pub fn new(profile: &DeviceProfile) -> Self {
        Self {
            profile: profile.clone(),
        }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &DeviceProfile {
        &self.profile
    }

    fn cycles_to_duration(&self, cycles: f64) -> SimDuration {
        SimDuration::from_secs_f64(cycles / self.profile.clock_hz() as f64)
    }

    /// Time to compute one self-measurement over `memory_bytes` of
    /// application memory with the given MAC.
    ///
    /// This is the cost of the *measurement phase* — identical for ERASMUS
    /// and on-demand attestation, as the paper observes in Figures 6 and 8.
    pub fn measurement(&self, memory_bytes: usize, alg: MacAlgorithm) -> SimDuration {
        let cycles = self.profile.mac_cycles_per_byte(alg) * memory_bytes as f64
            + self.profile.measurement_overhead_cycles() as f64;
        self.cycles_to_duration(cycles)
    }

    /// Time for the prover to authenticate and freshness-check a verifier
    /// request (on-demand and ERASMUS+OD only; plain ERASMUS skips this).
    pub fn verify_request(&self, alg: MacAlgorithm) -> SimDuration {
        let cycles = self.profile.request_auth_overhead_cycles() as f64
            + self.profile.mac_cycles_per_byte(alg) * self.profile.request_bytes() as f64;
        self.cycles_to_duration(cycles)
    }

    /// Time to read `entries` measurements out of the rolling buffer.
    pub fn buffer_read(&self, entries: usize) -> SimDuration {
        let cycles = self.profile.buffer_read_cycles_per_entry() as f64 * entries as f64;
        self.cycles_to_duration(cycles)
    }

    /// Time to construct an outgoing packet carrying `payload_bytes`.
    pub fn construct_packet(&self, payload_bytes: usize) -> SimDuration {
        let cycles = self.profile.packet_construct_cycles() as f64
            + self.profile.packet_per_byte_cycles() * payload_bytes as f64;
        self.cycles_to_duration(cycles)
    }

    /// Time to hand a packet of `payload_bytes` to the network interface.
    pub fn send_packet(&self, payload_bytes: usize) -> SimDuration {
        let cycles = self.profile.packet_send_cycles() as f64
            + self.profile.packet_per_byte_cycles() * payload_bytes as f64;
        self.cycles_to_duration(cycles)
    }

    /// Total prover-side time for an ERASMUS collection of `entries`
    /// measurements totalling `payload_bytes` (buffer read + packet
    /// construction + transmission; no cryptography).
    pub fn erasmus_collection(&self, entries: usize, payload_bytes: usize) -> SimDuration {
        self.buffer_read(entries)
            + self.construct_packet(payload_bytes)
            + self.send_packet(payload_bytes)
    }

    /// Total prover-side time for an ERASMUS+OD collection: request
    /// authentication, a fresh measurement over `memory_bytes`, then the
    /// same read/construct/send path as plain ERASMUS.
    pub fn erasmus_od_collection(
        &self,
        memory_bytes: usize,
        alg: MacAlgorithm,
        entries: usize,
        payload_bytes: usize,
    ) -> SimDuration {
        self.verify_request(alg)
            + self.measurement(memory_bytes, alg)
            + self.erasmus_collection(entries, payload_bytes)
    }

    /// Total prover-side time for a classic on-demand attestation: request
    /// authentication plus a fresh measurement plus sending the single
    /// result.
    pub fn on_demand_attestation(
        &self,
        memory_bytes: usize,
        alg: MacAlgorithm,
        response_bytes: usize,
    ) -> SimDuration {
        self.verify_request(alg)
            + self.measurement(memory_bytes, alg)
            + self.construct_packet(response_bytes)
            + self.send_packet(response_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msp430() -> CostModel {
        CostModel::new(&DeviceProfile::msp430_8mhz(10 * 1024))
    }

    fn imx6() -> CostModel {
        CostModel::new(&DeviceProfile::imx6_sabre_lite(10 * 1024 * 1024))
    }

    #[test]
    fn measurement_is_linear_in_memory() {
        let cost = msp430();
        let t1 = cost.measurement(1024, MacAlgorithm::HmacSha256);
        let t2 = cost.measurement(2048, MacAlgorithm::HmacSha256);
        let t4 = cost.measurement(4096, MacAlgorithm::HmacSha256);
        // Slope doubles (minus the fixed overhead).
        let slope_a = t2.as_secs_f64() - t1.as_secs_f64();
        let slope_b = (t4.as_secs_f64() - t2.as_secs_f64()) / 2.0;
        assert!((slope_a - slope_b).abs() / slope_a < 1e-9);
    }

    #[test]
    fn msp430_ten_kb_sha256_takes_about_seven_seconds() {
        let t = msp430().measurement(10 * 1024, MacAlgorithm::HmacSha256);
        assert!((t.as_secs_f64() - 7.0).abs() < 0.1, "{t}");
    }

    #[test]
    fn imx6_table2_compute_measurement() {
        let t = imx6().measurement(10 * 1024 * 1024, MacAlgorithm::KeyedBlake2s);
        assert!((t.as_millis_f64() - 285.6).abs() < 1.0, "{t}");
    }

    #[test]
    fn imx6_table2_collection_breakdown() {
        let cost = imx6();
        // Construct UDP packet ≈ 0.003 ms, send ≈ 0.012 ms for a small payload.
        let construct = cost.construct_packet(0);
        let send = cost.send_packet(0);
        assert!(
            (construct.as_millis_f64() - 0.003).abs() < 0.001,
            "{construct}"
        );
        assert!((send.as_millis_f64() - 0.012).abs() < 0.002, "{send}");
        // ERASMUS total collection ≈ 0.015 ms (plus negligible buffer read).
        let total = cost.erasmus_collection(1, 0);
        assert!(total.as_millis_f64() < 0.02, "{total}");
    }

    #[test]
    fn erasmus_od_is_dominated_by_the_fresh_measurement() {
        let cost = imx6();
        let od = cost.erasmus_od_collection(10 * 1024 * 1024, MacAlgorithm::KeyedBlake2s, 8, 600);
        let plain = cost.erasmus_collection(8, 600);
        // Table 2: 285.6 ms vs 0.015 ms — a factor of well over 3,000.
        assert!(od.as_secs_f64() / plain.as_secs_f64() > 3_000.0);
    }

    #[test]
    fn verify_request_is_cheap_relative_to_measurement() {
        let cost = imx6();
        let verify = cost.verify_request(MacAlgorithm::KeyedBlake2s);
        let measure = cost.measurement(10 * 1024 * 1024, MacAlgorithm::KeyedBlake2s);
        assert!(verify.as_millis_f64() < 0.01, "{verify}");
        assert!(measure.as_secs_f64() > verify.as_secs_f64() * 1_000.0);
    }

    #[test]
    fn blake2s_faster_than_hmac_sha256_on_both_platforms() {
        for cost in [msp430(), imx6()] {
            let blake = cost.measurement(8 * 1024, MacAlgorithm::KeyedBlake2s);
            let hmac = cost.measurement(8 * 1024, MacAlgorithm::HmacSha256);
            assert!(blake < hmac);
        }
    }

    #[test]
    fn on_demand_roughly_equals_erasmus_measurement() {
        // Fig. 6/8: the measurement run-time of ERASMUS and on-demand are
        // roughly equal; the difference is only the request authentication.
        let cost = msp430();
        let erasmus = cost.measurement(10 * 1024, MacAlgorithm::HmacSha256);
        let on_demand = cost.on_demand_attestation(10 * 1024, MacAlgorithm::HmacSha256, 72);
        let relative_gap =
            (on_demand.as_secs_f64() - erasmus.as_secs_f64()) / erasmus.as_secs_f64();
        assert!(
            relative_gap > 0.0 && relative_gap < 0.05,
            "gap {relative_gap}"
        );
    }
}
