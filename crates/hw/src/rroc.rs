//! Reliable Read-Only Clock (RROC).
//!
//! SMART+ requires a clock that software cannot modify; the paper realizes
//! it as a 64-bit register incremented every cycle with its write-enable
//! wire removed (Section 4.1). HYDRA builds the same property in software
//! from the i.MX6 General Purpose Timer, with the attestation process owning
//! the wrap-around handler (Section 4.2). ERASMUS relies on the RROC so that
//! malware cannot influence *when* measurements are taken or back-date them
//! (Section 3.4).

use erasmus_sim::{SimDuration, SimTime};

/// A monotonically increasing, software-immutable clock.
///
/// The public API only allows reading the clock and advancing it by elapsed
/// simulated time (which models the passage of real time, not a software
/// write). The only way to move it backwards is
/// [`Rroc::physical_rollback`], which models a *physical* attack outside the
/// paper's threat model and exists so that negative tests can demonstrate
/// what the RROC requirement protects against.
///
/// # Example
///
/// ```
/// use erasmus_hw::Rroc;
/// use erasmus_sim::SimDuration;
///
/// let mut rroc = Rroc::new();
/// rroc.advance(SimDuration::from_secs(5));
/// assert_eq!(rroc.now().as_secs_f64(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rroc {
    now: SimTime,
    /// Number of counter wrap-arounds handled (HYDRA software-clock detail;
    /// purely informational in the simulation).
    wraps: u64,
}

impl Rroc {
    /// Width of the short-term hardware counter the HYDRA software clock is
    /// built on (the i.MX6 GPT is a 32-bit counter).
    pub const HYDRA_COUNTER_BITS: u32 = 32;

    /// Creates a clock reading zero (device boot).
    pub fn new() -> Self {
        Self {
            now: SimTime::ZERO,
            wraps: 0,
        }
    }

    /// Creates a clock starting at an arbitrary instant (e.g. a device that
    /// has been running for a while before the scenario starts).
    pub fn starting_at(start: SimTime) -> Self {
        Self {
            now: start,
            wraps: 0,
        }
    }

    /// Current clock value.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `elapsed` real time.
    ///
    /// This models time passing, not a software write: there is no API to
    /// set the clock to an arbitrary value.
    pub fn advance(&mut self, elapsed: SimDuration) -> SimTime {
        // Track how many 32-bit counter wraps the HYDRA software clock would
        // have had to absorb for this advance (1 tick per nanosecond here).
        let before = self.now.as_nanos() >> Self::HYDRA_COUNTER_BITS;
        self.now += elapsed;
        let after = self.now.as_nanos() >> Self::HYDRA_COUNTER_BITS;
        self.wraps += after - before;
        self.now
    }

    /// Advances the clock to `target` if it is in the future; does nothing
    /// otherwise. Returns the (possibly unchanged) clock value.
    pub fn advance_to(&mut self, target: SimTime) -> SimTime {
        if target > self.now {
            let delta = target.duration_since(self.now);
            self.advance(delta);
        }
        self.now
    }

    /// Number of short-term counter wrap-arounds absorbed so far.
    pub fn wrap_count(&self) -> u64 {
        self.wraps
    }

    /// Models a **physical** clock-rollback attack.
    ///
    /// The paper's threat model excludes physical attacks; Section 3.4
    /// explains the measurement-discard/replay attack that becomes possible
    /// if the clock *could* be rolled back. This method exists solely so that
    /// tests and the security-analysis benches can demonstrate that attack;
    /// production code never calls it.
    pub fn physical_rollback(&mut self, to: SimTime) {
        self.now = to;
    }
}

impl Default for Rroc {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero_and_advances() {
        let mut rroc = Rroc::new();
        assert_eq!(rroc.now(), SimTime::ZERO);
        rroc.advance(SimDuration::from_secs(3));
        rroc.advance(SimDuration::from_millis(500));
        assert_eq!(rroc.now(), SimTime::from_millis(3500));
    }

    #[test]
    fn advance_to_never_goes_backwards() {
        let mut rroc = Rroc::starting_at(SimTime::from_secs(100));
        rroc.advance_to(SimTime::from_secs(50));
        assert_eq!(rroc.now(), SimTime::from_secs(100));
        rroc.advance_to(SimTime::from_secs(150));
        assert_eq!(rroc.now(), SimTime::from_secs(150));
    }

    #[test]
    fn wrap_counting_tracks_counter_overflow() {
        let mut rroc = Rroc::new();
        // 2^32 nanoseconds ≈ 4.29 s per wrap of the 32-bit counter.
        rroc.advance(SimDuration::from_nanos(1 << 33));
        assert_eq!(rroc.wrap_count(), 2);
        rroc.advance(SimDuration::from_nanos(1));
        assert_eq!(rroc.wrap_count(), 2);
    }

    #[test]
    fn physical_rollback_is_possible_but_explicit() {
        let mut rroc = Rroc::starting_at(SimTime::from_secs(1000));
        rroc.physical_rollback(SimTime::from_secs(10));
        assert_eq!(rroc.now(), SimTime::from_secs(10));
    }
}
