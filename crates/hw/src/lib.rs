//! Simulated hybrid remote-attestation hardware for the ERASMUS
//! reproduction.
//!
//! The paper implements ERASMUS on two security architectures:
//!
//! * **SMART+** (low-end, MSP430-class): attestation code and the key `K`
//!   live in ROM, the memory backbone enforces that only ROM code can read
//!   `K`, execution of the attestation code is atomic, and a Reliable
//!   Read-Only Clock (RROC) provides tamper-proof timestamps.
//! * **HYDRA** (medium-end, i.MX6-class with an MMU): the attestation
//!   process `PrAtt` runs on seL4, owns `K` and the RROC exclusively, and is
//!   protected by secure boot.
//!
//! This crate models the *properties* of those platforms rather than their
//! gate-level behaviour:
//!
//! * [`Mcu`] — the device: application memory, ROM with the device key,
//!   [`Rroc`], timers, an [`MpuConfig`] access-rule table, and the
//!   [`SecurityArchitecture`] flavour. The key is only reachable through
//!   [`Mcu::run_trusted`], which models entering the ROM/PrAtt attestation
//!   code with interrupts disabled.
//! * [`DeviceProfile`] — per-platform constants (clock rate, per-byte MAC
//!   cost, packet costs, code-size components) calibrated against the
//!   paper's Figures 6 and 8 and Tables 1 and 2.
//! * [`CostModel`] — converts work (bytes MAC'd, packets sent) into
//!   simulated time.
//! * [`CodeSizeModel`] / [`HardwareCost`] — reproduce Table 1 and the
//!   register/LUT overhead numbers of Section 4.1.
//!
//! # Example
//!
//! ```
//! use erasmus_hw::{DeviceKey, DeviceProfile, Mcu};
//! use erasmus_crypto::MacAlgorithm;
//!
//! let profile = DeviceProfile::msp430_8mhz(10 * 1024);
//! let mut mcu = Mcu::new(profile, DeviceKey::from_bytes([7u8; 32]));
//! // Only trusted (ROM-resident) code can touch the key:
//! let tag = mcu.run_trusted(|ctx| {
//!     MacAlgorithm::HmacSha256.mac(ctx.key_bytes(), b"measurement input")
//! }).expect("MPU permits the attestation code to read K");
//! assert_eq!(tag.len(), 32);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codesize;
pub mod cost;
pub mod error;
pub mod key;
pub mod mcu;
pub mod mem;
pub mod mpu;
pub mod profile;
pub mod rom;
pub mod rroc;
pub mod secure_boot;
pub mod timer;

pub use codesize::{CodeSizeModel, ExecutableSize, HardwareCost, RaMode};
pub use cost::CostModel;
pub use error::HwError;
pub use key::DeviceKey;
pub use mcu::{Mcu, TrustedContext};
pub use mem::{MemoryMap, MemoryRegion, RegionKind};
pub use mpu::{AccessKind, MpuConfig, MpuRule, Subject};
pub use profile::{DeviceProfile, SecurityArchitecture};
pub use rom::Rom;
pub use rroc::Rroc;
pub use secure_boot::SecureBoot;
pub use timer::PeriodicTimer;
