//! Execution-aware memory protection rules.
//!
//! SMART hard-wires access-control rules in the MCU memory backbone;
//! TrustLite generalizes them into an Execution-Aware MPU; HYDRA enforces
//! the same policy in software via seL4 capabilities. All three reduce to
//! the same abstract statement: *the device key is readable only while the
//! attestation code is executing, and the attestation code itself is
//! immutable*. [`MpuConfig`] captures that rule table.

use crate::error::HwError;
use crate::mem::RegionKind;

/// Who is performing an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Subject {
    /// The ROM-resident (SMART+) or PrAtt (HYDRA) attestation code.
    AttestationCode,
    /// Untrusted application code — including any malware present.
    Application,
    /// A DMA-capable peripheral or the network interface.
    Peripheral,
}

impl Subject {
    /// Human-readable name for error messages.
    pub fn name(self) -> &'static str {
        match self {
            Subject::AttestationCode => "attestation-code",
            Subject::Application => "application",
            Subject::Peripheral => "peripheral",
        }
    }
}

/// The kind of access being attempted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Read bytes.
    Read,
    /// Write bytes.
    Write,
    /// Fetch and execute instructions.
    Execute,
}

impl AccessKind {
    /// Human-readable name for error messages.
    pub fn name(self) -> &'static str {
        match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
            AccessKind::Execute => "execute",
        }
    }
}

/// A single allow-rule: `subject` may perform `access` on `region`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MpuRule {
    /// Who is allowed.
    pub subject: Subject,
    /// On which region.
    pub region: RegionKind,
    /// Which access kind.
    pub access: AccessKind,
}

impl MpuRule {
    /// Creates an allow-rule.
    pub fn allow(subject: Subject, region: RegionKind, access: AccessKind) -> Self {
        Self {
            subject,
            region,
            access,
        }
    }
}

/// A default-deny access-rule table.
///
/// # Example
///
/// ```
/// use erasmus_hw::{AccessKind, MpuConfig, Subject};
/// use erasmus_hw::RegionKind;
///
/// let mpu = MpuConfig::smart_plus();
/// // Attestation code may read the key…
/// assert!(mpu.check(Subject::AttestationCode, RegionKind::Key, AccessKind::Read).is_ok());
/// // …the application (and thus malware) may not.
/// assert!(mpu.check(Subject::Application, RegionKind::Key, AccessKind::Read).is_err());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpuConfig {
    rules: Vec<MpuRule>,
}

impl MpuConfig {
    /// Creates an empty (deny-everything) configuration.
    pub fn deny_all() -> Self {
        Self { rules: Vec::new() }
    }

    /// Creates a configuration from explicit rules.
    pub fn new(rules: Vec<MpuRule>) -> Self {
        Self { rules }
    }

    /// The SMART+ rule table of Figure 5:
    ///
    /// * attestation code: execute ROM, read key, read application memory,
    ///   read/write the measurement store, read peripherals (RROC, timer);
    /// * application: read/write application memory and the measurement
    ///   store, read ROM and peripherals — but never the key;
    /// * peripherals (network interface): read the measurement store so that
    ///   collection responses can be transmitted without invoking the
    ///   attestation code.
    pub fn smart_plus() -> Self {
        use AccessKind::{Execute, Read, Write};
        Self::new(vec![
            MpuRule::allow(Subject::AttestationCode, RegionKind::Rom, Execute),
            MpuRule::allow(Subject::AttestationCode, RegionKind::Rom, Read),
            MpuRule::allow(Subject::AttestationCode, RegionKind::Key, Read),
            MpuRule::allow(Subject::AttestationCode, RegionKind::Application, Read),
            MpuRule::allow(Subject::AttestationCode, RegionKind::MeasurementStore, Read),
            MpuRule::allow(
                Subject::AttestationCode,
                RegionKind::MeasurementStore,
                Write,
            ),
            MpuRule::allow(Subject::AttestationCode, RegionKind::Peripheral, Read),
            MpuRule::allow(Subject::Application, RegionKind::Application, Read),
            MpuRule::allow(Subject::Application, RegionKind::Application, Write),
            MpuRule::allow(Subject::Application, RegionKind::Application, Execute),
            MpuRule::allow(Subject::Application, RegionKind::Rom, Read),
            MpuRule::allow(Subject::Application, RegionKind::MeasurementStore, Read),
            MpuRule::allow(Subject::Application, RegionKind::MeasurementStore, Write),
            MpuRule::allow(Subject::Application, RegionKind::Peripheral, Read),
            MpuRule::allow(Subject::Peripheral, RegionKind::MeasurementStore, Read),
        ])
    }

    /// The HYDRA capability assignment of Figure 7. The shape is the same as
    /// SMART+ — the attestation process has exclusive access to `K` — with
    /// the addition that the attestation process may also *write* the RROC
    /// peripherals, because HYDRA builds its reliable clock in software from
    /// a hardware counter (Section 4.2).
    pub fn hydra() -> Self {
        let mut config = Self::smart_plus();
        config.rules.push(MpuRule::allow(
            Subject::AttestationCode,
            RegionKind::Peripheral,
            AccessKind::Write,
        ));
        // PrAtt code lives in RAM but is writable only by itself (enforced by
        // seL4 capabilities); modelled as attestation-code write access to ROM
        // being *absent* and application write access to ROM being absent too,
        // which the smart_plus table already guarantees by default-deny.
        config
    }

    /// All rules in the table.
    pub fn rules(&self) -> &[MpuRule] {
        &self.rules
    }

    /// Returns whether `subject` may perform `access` on `region`.
    pub fn is_allowed(&self, subject: Subject, region: RegionKind, access: AccessKind) -> bool {
        self.rules
            .iter()
            .any(|rule| rule.subject == subject && rule.region == region && rule.access == access)
    }

    /// Checks an access, returning an [`HwError::AccessViolation`] when it is
    /// not allowed.
    ///
    /// # Errors
    ///
    /// Returns an error when no allow-rule matches (default deny).
    pub fn check(
        &self,
        subject: Subject,
        region: RegionKind,
        access: AccessKind,
    ) -> Result<(), HwError> {
        if self.is_allowed(subject, region, access) {
            Ok(())
        } else {
            Err(HwError::AccessViolation {
                subject: subject.name().to_owned(),
                region: region.name().to_owned(),
                access: access.name().to_owned(),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_deny() {
        let mpu = MpuConfig::deny_all();
        assert!(mpu
            .check(
                Subject::Application,
                RegionKind::Application,
                AccessKind::Read
            )
            .is_err());
        assert!(mpu.rules().is_empty());
    }

    #[test]
    fn smart_plus_key_isolation() {
        let mpu = MpuConfig::smart_plus();
        // Only the attestation code reads K.
        assert!(mpu.is_allowed(Subject::AttestationCode, RegionKind::Key, AccessKind::Read));
        assert!(!mpu.is_allowed(Subject::Application, RegionKind::Key, AccessKind::Read));
        assert!(!mpu.is_allowed(Subject::Peripheral, RegionKind::Key, AccessKind::Read));
        // Nobody writes K or ROM at runtime.
        for subject in [
            Subject::AttestationCode,
            Subject::Application,
            Subject::Peripheral,
        ] {
            assert!(!mpu.is_allowed(subject, RegionKind::Key, AccessKind::Write));
            assert!(!mpu.is_allowed(subject, RegionKind::Rom, AccessKind::Write));
        }
    }

    #[test]
    fn smart_plus_measurement_store_is_insecure() {
        // The paper stores measurements in *unprotected* memory: the
        // application (and malware) may read and write them freely.
        let mpu = MpuConfig::smart_plus();
        assert!(mpu.is_allowed(
            Subject::Application,
            RegionKind::MeasurementStore,
            AccessKind::Read
        ));
        assert!(mpu.is_allowed(
            Subject::Application,
            RegionKind::MeasurementStore,
            AccessKind::Write
        ));
    }

    #[test]
    fn smart_plus_attestation_code_reads_app_memory() {
        let mpu = MpuConfig::smart_plus();
        assert!(mpu.is_allowed(
            Subject::AttestationCode,
            RegionKind::Application,
            AccessKind::Read
        ));
        assert!(mpu.is_allowed(
            Subject::AttestationCode,
            RegionKind::Peripheral,
            AccessKind::Read
        ));
    }

    #[test]
    fn hydra_extends_smart_plus() {
        let smart = MpuConfig::smart_plus();
        let hydra = MpuConfig::hydra();
        // Everything SMART+ allows, HYDRA allows too.
        for rule in smart.rules() {
            assert!(hydra.is_allowed(rule.subject, rule.region, rule.access));
        }
        // HYDRA's software clock needs peripheral write access for PrAtt.
        assert!(hydra.is_allowed(
            Subject::AttestationCode,
            RegionKind::Peripheral,
            AccessKind::Write
        ));
        assert!(!smart.is_allowed(
            Subject::AttestationCode,
            RegionKind::Peripheral,
            AccessKind::Write
        ));
        // But the application still cannot touch the key.
        assert!(!hydra.is_allowed(Subject::Application, RegionKind::Key, AccessKind::Read));
    }

    #[test]
    fn check_reports_subject_and_region() {
        let mpu = MpuConfig::smart_plus();
        let err = mpu
            .check(Subject::Application, RegionKind::Key, AccessKind::Read)
            .unwrap_err();
        let message = err.to_string();
        assert!(message.contains("application"));
        assert!(message.contains("key"));
        assert!(message.contains("read"));
    }
}
