//! Property test: the calendar queue delivers the exact event order of the
//! binary-heap oracle — same times, same FIFO tie-break — over arbitrary
//! interleaved push/pop sequences.
//!
//! This is the contract the fleet harness's bit-identity guarantee rests
//! on: `perfbench --scheduler heap` and the default calendar run must
//! produce byte-identical reports, which holds iff the two queues agree on
//! the total `(time, sequence)` order for every workload shape.

use erasmus_sim::{CalendarQueue, HeapEventQueue, SimTime};
use proptest::collection::vec;
use proptest::prelude::*;

/// One step of an interleaved workload: push at a time derived from the
/// draw, or pop.
#[derive(Debug, Clone, Copy)]
enum Op {
    Push(u64),
    Pop,
}

/// Strategy: (raw nanos draw, shape selector) → Op. The time distributions
/// deliberately cover the calendar queue's structural cases:
/// * dense same-instant bursts (FIFO ties),
/// * in-wheel times (< one revolution ≈ 17.2 s),
/// * far-future overflow times (minutes to hours),
/// * multi-lap aliases (same wheel slot, different lap).
fn op_strategy() -> impl Strategy<Value = Op> {
    (0u64..1 << 44, 0u32..10).prop_map(|(raw, shape)| match shape {
        0..=2 => Op::Pop,
        // Bursty: collapse to one of 8 instants inside ~2 s.
        3 | 4 => Op::Push((raw % 8) * 250_000_000),
        // Uniform in-wheel: anywhere in the first ~17 s.
        5..=7 => Op::Push(raw % 17_000_000_000),
        // Far future: up to ~4.8 hours out — forced through overflow.
        8 => Op::Push(raw),
        // Lap alias: fixed slot, variable lap (wheel span = 2^34 ns).
        _ => Op::Push((5u64 << 24) + (raw % 16) * (1u64 << 34)),
    })
}

proptest! {
    #[test]
    fn calendar_matches_heap_oracle(ops in vec(op_strategy(), 0..600)) {
        let mut calendar: CalendarQueue<u64> = CalendarQueue::new();
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
        let mut payload = 0u64;
        for op in ops {
            match op {
                Op::Push(nanos) => {
                    let time = SimTime::from_nanos(nanos);
                    calendar.push(time, payload);
                    heap.push(time, payload);
                    payload += 1;
                }
                Op::Pop => {
                    prop_assert_eq!(calendar.pop(), heap.pop());
                }
            }
            prop_assert_eq!(calendar.len(), heap.len());
        }
        // Drain the tails: the full remaining order must agree too.
        loop {
            let a = calendar.pop();
            let b = heap.pop();
            prop_assert_eq!(&a, &b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn same_instant_storms_stay_fifo(
        burst in vec(0u64..4, 1..400),
        pop_every in 2u64..6,
    ) {
        // Every push lands on one of at most four instants; the oracle
        // comparison therefore exercises pure sequence-number tie-breaking
        // under drain-time insertion (pops interleaved with pushes at the
        // instant being drained).
        let mut calendar: CalendarQueue<u64> = CalendarQueue::new();
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
        for (i, slot) in burst.iter().enumerate() {
            let time = SimTime::from_secs(*slot);
            calendar.push(time, i as u64);
            heap.push(time, i as u64);
            if i as u64 % pop_every == 0 {
                prop_assert_eq!(calendar.pop(), heap.pop());
            }
        }
        loop {
            let a = calendar.pop();
            let b = heap.pop();
            prop_assert_eq!(&a, &b);
            if a.is_none() {
                break;
            }
        }
    }

    #[test]
    fn clear_mid_stream_keeps_backends_aligned(
        before in vec(0u64..20_000_000_000, 0..100),
        after in vec(0u64..20_000_000_000, 0..100),
    ) {
        // A clear (the fleet harness's churn-epoch reset path) must leave
        // both backends in agreeing states: empty, with sequence numbering
        // still monotonic so later pushes order identically.
        let mut calendar: CalendarQueue<u64> = CalendarQueue::new();
        let mut heap: HeapEventQueue<u64> = HeapEventQueue::new();
        let mut payload = 0u64;
        for nanos in before {
            let time = SimTime::from_nanos(nanos);
            calendar.push(time, payload);
            heap.push(time, payload);
            payload += 1;
        }
        calendar.clear();
        heap.clear();
        prop_assert!(calendar.is_empty());
        prop_assert_eq!(calendar.pop(), None);
        for nanos in after {
            let time = SimTime::from_nanos(nanos);
            calendar.push(time, payload);
            heap.push(time, payload);
            payload += 1;
        }
        loop {
            let a = calendar.pop();
            let b = heap.pop();
            prop_assert_eq!(&a, &b);
            if a.is_none() {
                break;
            }
        }
    }
}
