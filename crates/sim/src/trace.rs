//! Append-only trace of simulation events.

use std::fmt;

use crate::time::SimTime;

/// One recorded occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// When it happened.
    pub time: SimTime,
    /// Category label, e.g. `"measurement"`, `"collection"`, `"infection"`.
    pub kind: String,
    /// Free-form description.
    pub detail: String,
}

impl fmt::Display for TraceEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.6}s] {:<14} {}",
            self.time.as_secs_f64(),
            self.kind,
            self.detail
        )
    }
}

/// An append-only, time-stamped event log.
///
/// Scenario runners record measurements, collections, infections and
/// detections here; the QoA analysis and the `repro fig1` harness read it
/// back to build the paper's Figure 1 timeline.
///
/// # Example
///
/// ```
/// use erasmus_sim::{SimTime, Trace};
///
/// let mut trace = Trace::new();
/// trace.record(SimTime::from_secs(10), "measurement", "slot 0");
/// trace.record(SimTime::from_secs(60), "collection", "k=6");
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.of_kind("measurement").count(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
}

impl Trace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an entry.
    pub fn record(&mut self, time: SimTime, kind: impl Into<String>, detail: impl Into<String>) {
        self.entries.push(TraceEntry {
            time,
            kind: kind.into(),
            detail: detail.into(),
        });
    }

    /// All entries in insertion order.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterator over entries of a given kind.
    pub fn of_kind<'a>(&'a self, kind: &'a str) -> impl Iterator<Item = &'a TraceEntry> + 'a {
        self.entries.iter().filter(move |entry| entry.kind == kind)
    }

    /// First entry of a given kind at or after `time`.
    pub fn first_after(&self, kind: &str, time: SimTime) -> Option<&TraceEntry> {
        self.entries
            .iter()
            .filter(|entry| entry.kind == kind && entry.time >= time)
            .min_by_key(|entry| entry.time)
    }

    /// Merges another trace into this one, keeping global time order.
    pub fn merge(&mut self, other: &Trace) {
        self.entries.extend(other.entries.iter().cloned());
        self.entries.sort_by_key(|entry| entry.time);
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for entry in &self.entries {
            writeln!(f, "{entry}")?;
        }
        Ok(())
    }
}

impl FromIterator<TraceEntry> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEntry>>(iter: I) -> Self {
        Self {
            entries: iter.into_iter().collect(),
        }
    }
}

impl Extend<TraceEntry> for Trace {
    fn extend<I: IntoIterator<Item = TraceEntry>>(&mut self, iter: I) {
        self.entries.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_filters() {
        let mut trace = Trace::new();
        assert!(trace.is_empty());
        trace.record(SimTime::from_secs(1), "measurement", "m1");
        trace.record(SimTime::from_secs(2), "infection", "mobile malware enters");
        trace.record(SimTime::from_secs(3), "measurement", "m2");
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.of_kind("measurement").count(), 2);
        assert_eq!(trace.of_kind("collection").count(), 0);
    }

    #[test]
    fn first_after_finds_next_event() {
        let mut trace = Trace::new();
        trace.record(SimTime::from_secs(10), "collection", "c1");
        trace.record(SimTime::from_secs(20), "collection", "c2");
        let found = trace
            .first_after("collection", SimTime::from_secs(15))
            .expect("entry");
        assert_eq!(found.detail, "c2");
        assert!(trace
            .first_after("collection", SimTime::from_secs(21))
            .is_none());
        // Boundary: an entry exactly at the query time counts.
        assert_eq!(
            trace
                .first_after("collection", SimTime::from_secs(20))
                .map(|e| e.detail.as_str()),
            Some("c2")
        );
    }

    #[test]
    fn merge_keeps_time_order() {
        let mut a = Trace::new();
        a.record(SimTime::from_secs(1), "x", "1");
        a.record(SimTime::from_secs(5), "x", "5");
        let mut b = Trace::new();
        b.record(SimTime::from_secs(3), "y", "3");
        a.merge(&b);
        let times: Vec<u64> = a.entries().iter().map(|e| e.time.as_nanos()).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        assert_eq!(times, sorted);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn display_contains_all_entries() {
        let mut trace = Trace::new();
        trace.record(SimTime::from_secs(1), "measurement", "first");
        trace.record(SimTime::from_secs(2), "collection", "second");
        let text = trace.to_string();
        assert!(text.contains("measurement"));
        assert!(text.contains("second"));
    }

    #[test]
    fn collect_and_extend() {
        let entries = vec![
            TraceEntry {
                time: SimTime::from_secs(1),
                kind: "a".into(),
                detail: String::new(),
            },
            TraceEntry {
                time: SimTime::from_secs(2),
                kind: "b".into(),
                detail: String::new(),
            },
        ];
        let mut trace: Trace = entries.clone().into_iter().collect();
        assert_eq!(trace.len(), 2);
        trace.extend(entries);
        assert_eq!(trace.len(), 4);
    }
}
