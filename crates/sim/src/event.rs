//! Time-ordered event queue.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled at a point in simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<T> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic sequence number used to break ties FIFO.
    pub sequence: u64,
    /// Caller-defined payload.
    pub payload: T,
}

/// Internal wrapper giving the heap min-ordering by (time, sequence).
#[derive(Debug)]
struct HeapEntry<T> {
    event: ScheduledEvent<T>,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.event.time == other.event.time && self.event.sequence == other.event.sequence
    }
}

impl<T> Eq for HeapEntry<T> {}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        other
            .event
            .time
            .cmp(&self.event.time)
            .then_with(|| other.event.sequence.cmp(&self.event.sequence))
    }
}

/// A priority queue of events ordered by time, with FIFO tie-breaking.
///
/// # Example
///
/// ```
/// use erasmus_sim::{EventQueue, SimTime};
///
/// let mut queue = EventQueue::new();
/// queue.push(SimTime::from_secs(3), "c");
/// queue.push(SimTime::from_secs(1), "a");
/// queue.push(SimTime::from_secs(1), "b");
/// assert_eq!(queue.pop().map(|e| e.payload), Some("a"));
/// assert_eq!(queue.pop().map(|e| e.payload), Some("b"));
/// assert_eq!(queue.pop().map(|e| e.payload), Some("c"));
/// assert!(queue.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    next_sequence: u64,
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_sequence: 0,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(HeapEntry {
            event: ScheduledEvent {
                time,
                sequence,
                payload,
            },
        });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        self.heap.pop().map(|entry| entry.event)
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|entry| entry.event.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut queue = EventQueue::new();
        queue.push(SimTime::from_secs(10), 10u32);
        queue.push(SimTime::from_secs(5), 5);
        queue.push(SimTime::from_secs(7), 7);
        let order: Vec<u32> = std::iter::from_fn(|| queue.pop().map(|e| e.payload)).collect();
        assert_eq!(order, vec![5, 7, 10]);
    }

    #[test]
    fn ties_broken_fifo() {
        let mut queue = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..100u32 {
            queue.push(t, i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| queue.pop().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn peek_and_len() {
        let mut queue = EventQueue::new();
        assert!(queue.is_empty());
        assert_eq!(queue.peek_time(), None);
        queue.push(SimTime::from_secs(2), ());
        queue.push(SimTime::from_secs(1), ());
        assert_eq!(queue.len(), 2);
        assert_eq!(queue.peek_time(), Some(SimTime::from_secs(1)));
        queue.clear();
        assert!(queue.is_empty());
    }

    #[test]
    fn sequence_numbers_are_monotonic() {
        let mut queue = EventQueue::new();
        queue.push(SimTime::ZERO, "a");
        queue.push(SimTime::ZERO, "b");
        let first = queue.pop().expect("event");
        let second = queue.pop().expect("event");
        assert!(first.sequence < second.sequence);
    }
}
