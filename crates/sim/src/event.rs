//! Time-ordered event queues: the calendar-queue scheduler and the
//! binary-heap reference implementation.
//!
//! [`EventQueue`] is the queue the [`Engine`](crate::Engine) runs on. Since
//! the calendar-queue refactor it fronts one of two backends selected by
//! [`Scheduler`]:
//!
//! * [`CalendarQueue`] (the default) — a bucketed rotating-wheel scheduler.
//!   Near-future events land in a wheel of fixed-width time buckets; pops
//!   rotate a cursor through the wheel and drain one bucket at a time, so
//!   steady-state push and pop cost O(1) instead of the heap's O(log n).
//!   Far-future events (beyond one wheel revolution) wait in a min-heap
//!   overflow and migrate into the wheel as the cursor approaches.
//! * [`HeapEventQueue`] — the original `BinaryHeap` implementation, kept as
//!   the compatibility path (`perfbench --scheduler heap`) and as the
//!   property-test oracle for order equivalence.
//!
//! Both backends deliver the exact same order: ascending event time, ties
//! broken FIFO by a monotonic per-queue sequence number. Every structure in
//! this module is deterministic — plain `Vec`s and integer arithmetic, no
//! hashing, no wall clock — so simulation results depend only on the
//! sequence of pushes and pops.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An event scheduled at a point in simulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScheduledEvent<T> {
    /// When the event fires.
    pub time: SimTime,
    /// Monotonic sequence number used to break ties FIFO.
    pub sequence: u64,
    /// Caller-defined payload.
    pub payload: T,
}

impl<T> ScheduledEvent<T> {
    /// The total order both backends deliver in.
    fn key(&self) -> (SimTime, u64) {
        (self.time, self.sequence)
    }
}

/// Which queue backend an [`EventQueue`] (or an
/// [`Engine`](crate::Engine)) schedules on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Scheduler {
    /// The bucketed rotating-wheel calendar queue (the default).
    #[default]
    Calendar,
    /// The binary-heap reference implementation, kept bit-compatible as the
    /// compatibility path and test oracle.
    Heap,
}

impl Scheduler {
    /// Canonical lowercase name, as used by CLI flags and JSON reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Scheduler::Calendar => "calendar",
            Scheduler::Heap => "heap",
        }
    }
}

impl std::fmt::Display for Scheduler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

impl std::str::FromStr for Scheduler {
    type Err = String;

    fn from_str(value: &str) -> Result<Self, Self::Err> {
        match value {
            "calendar" => Ok(Scheduler::Calendar),
            "heap" => Ok(Scheduler::Heap),
            other => Err(format!(
                "unknown scheduler '{other}' (expected 'calendar' or 'heap')"
            )),
        }
    }
}

/// Counters a queue accumulates over its lifetime, surfaced into the
/// perfbench JSON (`events.queue` in the schema).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueueStats {
    /// Events pushed.
    pub pushes: u64,
    /// Events popped.
    pub pops: u64,
    /// Pushes that landed beyond the wheel horizon, into the min-heap
    /// overflow (always 0 for the heap backend).
    pub overflow_pushes: u64,
    /// High-water mark of pending events.
    pub max_pending: u64,
    /// Number of wheel buckets (0 for the heap backend).
    pub buckets: u64,
    /// Bucket width in nanoseconds (0 for the heap backend).
    pub bucket_width_nanos: u64,
}

/// Internal wrapper giving the heap min-ordering by (time, sequence).
#[derive(Debug)]
struct HeapEntry<T> {
    event: ScheduledEvent<T>,
}

impl<T> PartialEq for HeapEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.event.key() == other.event.key()
    }
}

impl<T> Eq for HeapEntry<T> {}

impl<T> PartialOrd for HeapEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for HeapEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we want earliest first.
        other.event.key().cmp(&self.event.key())
    }
}

/// The original `BinaryHeap`-backed queue: O(log n) push/pop, identical
/// delivery order to [`CalendarQueue`].
///
/// Retained for two jobs: the `--scheduler heap` compatibility path of the
/// fleet harness (runs must be bit-identical across backends) and the
/// oracle of the order-equivalence property test.
#[derive(Debug)]
pub struct HeapEventQueue<T> {
    heap: BinaryHeap<HeapEntry<T>>,
    next_sequence: u64,
    stats: QueueStats,
}

impl<T> HeapEventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            heap: BinaryHeap::new(),
            next_sequence: 0,
            stats: QueueStats::default(),
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let sequence = self.next_sequence;
        self.next_sequence += 1;
        self.heap.push(HeapEntry {
            event: ScheduledEvent {
                time,
                sequence,
                payload,
            },
        });
        self.stats.pushes += 1;
        self.stats.max_pending = self.stats.max_pending.max(self.heap.len() as u64);
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        let event = self.heap.pop().map(|entry| entry.event)?;
        self.stats.pops += 1;
        Some(event)
    }

    /// Time of the earliest pending event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|entry| entry.event.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes all pending events. Sequence numbers keep counting, so FIFO
    /// ordering stays globally monotonic across the clear.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Lifetime counters of this queue.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }
}

impl<T> Default for HeapEventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Wheel bucket width as a power of two of nanoseconds: 2^24 ns ≈ 16.8 ms.
const BUCKET_BITS: u32 = 24;
/// Wheel size. 1024 buckets × 16.8 ms ≈ 17.2 s of horizon — comfortably
/// wider than the fleet harness's 10 s measurement interval, so steady-state
/// reschedules (cohort ticks, ARQ backoffs, deliveries) stay in the wheel
/// and only the up-front seeding of far-future rounds touches the overflow
/// list.
const BUCKET_COUNT: usize = 1024;

fn bucket_index(time: SimTime) -> u64 {
    time.as_nanos() >> BUCKET_BITS
}

/// A calendar queue: a rotating wheel of time buckets with a min-heap
/// overflow for events beyond one revolution.
///
/// * `push` appends to the target bucket (O(1)); events due in the bucket
///   currently being drained merge into the sorted drain (rare: only
///   same-instant follow-ups land there).
/// * `pop` takes from the drain (O(1)); when the drain runs dry the cursor
///   rotates to the next non-empty bucket, moves that bucket's current-lap
///   events into the drain and sorts them once.
/// * Events more than one revolution ahead wait in `overflow` and migrate
///   into the wheel as the cursor advances, so wheel occupancy tracks the
///   active horizon instead of the whole timeline.
///
/// Delivery order is identical to [`HeapEventQueue`]: ascending
/// `(time, sequence)`, i.e. FIFO among same-instant events — the property
/// test in `tests/queue_equivalence.rs` pins this against the heap oracle.
#[derive(Debug)]
pub struct CalendarQueue<T> {
    /// The wheel: `BUCKET_COUNT` unsorted buckets. A bucket may hold events
    /// of several laps; only those of the cursor's lap drain out of it.
    wheel: Vec<Vec<ScheduledEvent<T>>>,
    /// Events of the cursor's bucket, sorted descending by
    /// `(time, sequence)` so popping the back yields the minimum.
    drain: Vec<ScheduledEvent<T>>,
    /// Absolute bucket number (`time >> BUCKET_BITS`) being drained.
    cursor: u64,
    /// Events currently in wheel buckets (excluding the drain).
    wheel_len: usize,
    /// Far-future events in a min-heap (reusing the oracle backend's
    /// [`HeapEntry`] ordering): O(log n) insert, O(1) min peek, so the
    /// migration guard never sorts and a steady drip of one-revolution-out
    /// pushes costs O(log n) each instead of a re-sort per cursor advance.
    overflow: BinaryHeap<HeapEntry<T>>,
    len: usize,
    next_sequence: u64,
    stats: QueueStats,
}

impl<T> CalendarQueue<T> {
    /// Creates an empty queue with the cursor at time zero.
    pub fn new() -> Self {
        Self {
            wheel: (0..BUCKET_COUNT).map(|_| Vec::new()).collect(),
            drain: Vec::new(),
            cursor: 0,
            wheel_len: 0,
            overflow: BinaryHeap::new(),
            len: 0,
            next_sequence: 0,
            stats: QueueStats {
                buckets: BUCKET_COUNT as u64,
                bucket_width_nanos: 1 << BUCKET_BITS,
                ..QueueStats::default()
            },
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        let event = ScheduledEvent {
            time,
            sequence: self.next_sequence,
            payload,
        };
        self.next_sequence += 1;
        self.len += 1;
        self.stats.pushes += 1;
        self.stats.max_pending = self.stats.max_pending.max(self.len as u64);
        let bucket = bucket_index(time);
        if bucket <= self.cursor {
            // Due in the bucket being drained — or earlier (the raw queue
            // is a general priority queue; the engine never schedules into
            // the past, but `push` stays total). The common shape here is a
            // same-instant storm: every drained event orders before the new
            // one, so it can wait in the cursor's wheel bucket for the next
            // `advance` — O(1) instead of a front-of-drain memmove, which
            // would go quadratic across the storm. Only an event that must
            // interleave with the pending drain merges into it.
            let after_whole_drain = bucket == self.cursor
                && self.drain.first().is_none_or(|max| event.key() > max.key());
            if after_whole_drain {
                self.wheel[(bucket % BUCKET_COUNT as u64) as usize].push(event);
                self.wheel_len += 1;
            } else {
                self.insert_into_drain(event);
            }
        } else if bucket < self.cursor + BUCKET_COUNT as u64 {
            self.wheel[(bucket % BUCKET_COUNT as u64) as usize].push(event);
            self.wheel_len += 1;
        } else {
            self.overflow.push(HeapEntry { event });
            self.stats.overflow_pushes += 1;
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        if self.drain.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
        let event = self.drain.pop().expect("advance fills the drain");
        self.len -= 1;
        self.stats.pops += 1;
        Some(event)
    }

    /// Time of the earliest pending event, if any.
    ///
    /// Takes `&mut self`: peeking may rotate the cursor to the next
    /// non-empty bucket. Delivery order is unaffected.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.drain.is_empty() {
            if self.len == 0 {
                return None;
            }
            self.advance();
        }
        self.drain.last().map(|event| event.time)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes all pending events. The cursor and sequence counter keep
    /// their positions, so ordering stays consistent for later pushes.
    pub fn clear(&mut self) {
        for bucket in &mut self.wheel {
            bucket.clear();
        }
        self.drain.clear();
        self.overflow.clear();
        self.wheel_len = 0;
        self.len = 0;
    }

    /// Lifetime counters of this queue.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    fn insert_into_drain(&mut self, event: ScheduledEvent<T>) {
        let key = event.key();
        // The drain is sorted descending; find the first element ordered
        // below the new event and insert before it.
        let position = self.drain.partition_point(|other| other.key() > key);
        self.drain.insert(position, event);
    }

    /// Refills the drain from the wheel. Caller guarantees the drain is
    /// empty and `len > 0`.
    fn advance(&mut self) {
        debug_assert!(self.drain.is_empty() && self.len > 0);
        loop {
            self.migrate_overflow();
            if self.wheel_len == 0 {
                // Everything pending is beyond the wheel horizon: jump the
                // cursor to the earliest overflow event's bucket and let the
                // migration at the top of the loop pull it in.
                let min = self.overflow_min_bucket();
                debug_assert!(min < u64::MAX, "len > 0 implies events");
                self.cursor = min;
                continue;
            }
            // Rotate through the wheel looking for events due this lap.
            for _ in 0..BUCKET_COUNT {
                let slot = (self.cursor % BUCKET_COUNT as u64) as usize;
                if !self.wheel[slot].is_empty() {
                    let bucket = &mut self.wheel[slot];
                    let mut i = 0;
                    while i < bucket.len() {
                        if bucket_index(bucket[i].time) == self.cursor {
                            self.drain.push(bucket.swap_remove(i));
                        } else {
                            i += 1;
                        }
                    }
                    if !self.drain.is_empty() {
                        self.wheel_len -= self.drain.len();
                        self.drain
                            .sort_unstable_by_key(|event| std::cmp::Reverse(event.key()));
                        return;
                    }
                }
                self.cursor += 1;
                self.migrate_overflow();
            }
            // A full revolution found nothing due: every wheel event belongs
            // to a later lap. Jump straight to the earliest one.
            self.cursor = self
                .wheel
                .iter()
                .flatten()
                .map(|event| bucket_index(event.time))
                .min()
                .expect("wheel_len > 0");
        }
    }

    /// Moves overflow events that now fall inside the wheel horizon into
    /// their buckets.
    fn migrate_overflow(&mut self) {
        let horizon = self.cursor + BUCKET_COUNT as u64;
        // The heap keeps the earliest event on top, so the common cases —
        // no overflow at all, or overflow still entirely beyond the
        // horizon — cost one peek.
        while let Some(next) = self.overflow.peek() {
            let bucket = bucket_index(next.event.time);
            if bucket >= horizon {
                break;
            }
            debug_assert!(
                bucket >= self.cursor,
                "overflow events are ahead of the cursor"
            );
            let event = self.overflow.pop().expect("checked non-empty").event;
            self.wheel[(bucket % BUCKET_COUNT as u64) as usize].push(event);
            self.wheel_len += 1;
        }
    }

    /// Bucket index of the earliest overflow event (`u64::MAX` when empty).
    fn overflow_min_bucket(&self) -> u64 {
        self.overflow
            .peek()
            .map_or(u64::MAX, |next| bucket_index(next.event.time))
    }
}

impl<T> Default for CalendarQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug)]
enum Backend<T> {
    Calendar(CalendarQueue<T>),
    Heap(HeapEventQueue<T>),
}

/// A priority queue of events ordered by time, with FIFO tie-breaking.
///
/// Backed by the [`CalendarQueue`] by default; [`EventQueue::with_scheduler`]
/// selects the [`HeapEventQueue`] compatibility backend instead. Delivery
/// order is identical either way.
///
/// # Example
///
/// ```
/// use erasmus_sim::{EventQueue, SimTime};
///
/// let mut queue = EventQueue::new();
/// queue.push(SimTime::from_secs(3), "c");
/// queue.push(SimTime::from_secs(1), "a");
/// queue.push(SimTime::from_secs(1), "b");
/// assert_eq!(queue.pop().map(|e| e.payload), Some("a"));
/// assert_eq!(queue.pop().map(|e| e.payload), Some("b"));
/// assert_eq!(queue.pop().map(|e| e.payload), Some("c"));
/// assert!(queue.is_empty());
/// ```
#[derive(Debug)]
pub struct EventQueue<T> {
    backend: Backend<T>,
}

impl<T> EventQueue<T> {
    /// Creates an empty calendar-backed queue.
    pub fn new() -> Self {
        Self::with_scheduler(Scheduler::Calendar)
    }

    /// Creates an empty queue on the given backend.
    pub fn with_scheduler(scheduler: Scheduler) -> Self {
        let backend = match scheduler {
            Scheduler::Calendar => Backend::Calendar(CalendarQueue::new()),
            Scheduler::Heap => Backend::Heap(HeapEventQueue::new()),
        };
        Self { backend }
    }

    /// Which backend this queue schedules on.
    pub fn scheduler(&self) -> Scheduler {
        match &self.backend {
            Backend::Calendar(_) => Scheduler::Calendar,
            Backend::Heap(_) => Scheduler::Heap,
        }
    }

    /// Schedules `payload` at `time`.
    pub fn push(&mut self, time: SimTime, payload: T) {
        match &mut self.backend {
            Backend::Calendar(queue) => queue.push(time, payload),
            Backend::Heap(queue) => queue.push(time, payload),
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<ScheduledEvent<T>> {
        match &mut self.backend {
            Backend::Calendar(queue) => queue.pop(),
            Backend::Heap(queue) => queue.pop(),
        }
    }

    /// Time of the earliest pending event, if any.
    ///
    /// Takes `&mut self` since the calendar backend may rotate its cursor
    /// forward to find the next event; delivery order is unaffected.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        match &mut self.backend {
            Backend::Calendar(queue) => queue.peek_time(),
            Backend::Heap(queue) => queue.peek_time(),
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        match &self.backend {
            Backend::Calendar(queue) => queue.len(),
            Backend::Heap(queue) => queue.len(),
        }
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes all pending events. Sequence numbers keep counting, so FIFO
    /// ordering stays globally monotonic across the clear.
    pub fn clear(&mut self) {
        match &mut self.backend {
            Backend::Calendar(queue) => queue.clear(),
            Backend::Heap(queue) => queue.clear(),
        }
    }

    /// Lifetime counters of this queue.
    pub fn stats(&self) -> QueueStats {
        match &self.backend {
            Backend::Calendar(queue) => queue.stats(),
            Backend::Heap(queue) => queue.stats(),
        }
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn both() -> [EventQueue<u32>; 2] {
        [
            EventQueue::with_scheduler(Scheduler::Calendar),
            EventQueue::with_scheduler(Scheduler::Heap),
        ]
    }

    #[test]
    fn orders_by_time() {
        for mut queue in both() {
            queue.push(SimTime::from_secs(10), 10u32);
            queue.push(SimTime::from_secs(5), 5);
            queue.push(SimTime::from_secs(7), 7);
            let order: Vec<u32> = std::iter::from_fn(|| queue.pop().map(|e| e.payload)).collect();
            assert_eq!(order, vec![5, 7, 10], "{}", queue.scheduler());
        }
    }

    #[test]
    fn ties_broken_fifo() {
        for mut queue in both() {
            let t = SimTime::from_secs(1);
            for i in 0..100u32 {
                queue.push(t, i);
            }
            let order: Vec<u32> = std::iter::from_fn(|| queue.pop().map(|e| e.payload)).collect();
            assert_eq!(order, (0..100).collect::<Vec<_>>(), "{}", queue.scheduler());
        }
    }

    #[test]
    fn peek_and_len() {
        for mut queue in both() {
            assert!(queue.is_empty());
            assert_eq!(queue.peek_time(), None);
            queue.push(SimTime::from_secs(2), 0);
            queue.push(SimTime::from_secs(1), 0);
            assert_eq!(queue.len(), 2);
            assert_eq!(queue.peek_time(), Some(SimTime::from_secs(1)));
            queue.clear();
            assert!(queue.is_empty());
        }
    }

    #[test]
    fn sequence_numbers_are_monotonic() {
        for mut queue in both() {
            queue.push(SimTime::ZERO, 0);
            queue.push(SimTime::ZERO, 1);
            let first = queue.pop().expect("event");
            let second = queue.pop().expect("event");
            assert!(first.sequence < second.sequence);
        }
    }

    #[test]
    fn far_future_events_take_the_overflow_path() {
        let mut queue: CalendarQueue<&str> = CalendarQueue::new();
        // One wheel revolution is ~17.2 s; one hour is far beyond it.
        queue.push(SimTime::from_secs(3600), "late");
        queue.push(SimTime::from_secs(1), "early");
        assert_eq!(queue.stats().overflow_pushes, 1);
        assert_eq!(queue.pop().map(|e| e.payload), Some("early"));
        assert_eq!(queue.pop().map(|e| e.payload), Some("late"));
        assert!(queue.is_empty());
    }

    #[test]
    fn overflow_events_interleave_correctly_with_wheel_events() {
        // Regression shape: an event pushed far in the future (overflow)
        // must not be overtaken by a *later-timed* event that enters the
        // wheel once the cursor has advanced near it.
        let mut queue: CalendarQueue<&str> = CalendarQueue::new();
        queue.push(SimTime::from_secs(100), "first"); // overflow at push
        queue.push(SimTime::from_secs(1), "warmup");
        assert_eq!(queue.pop().map(|e| e.payload), Some("warmup"));
        // Cursor sits at ~1 s; 101 s is still beyond one revolution from
        // there, 100 s has been migrated or will be — either way order must
        // hold.
        queue.push(SimTime::from_secs(101), "second");
        assert_eq!(queue.pop().map(|e| e.payload), Some("first"));
        assert_eq!(queue.pop().map(|e| e.payload), Some("second"));
    }

    #[test]
    fn multi_lap_buckets_deliver_in_time_order() {
        // Two events in the same wheel slot but different laps: the wheel
        // span is BUCKET_COUNT << BUCKET_BITS nanos, so `t` and
        // `t + span` share a slot.
        let span = (BUCKET_COUNT as u64) << BUCKET_BITS;
        let mut queue: CalendarQueue<&str> = CalendarQueue::new();
        queue.push(SimTime::from_nanos(5 << BUCKET_BITS), "lap0");
        // Same slot, one lap later — lands in overflow first, then migrates
        // into the same bucket as the cursor approaches.
        queue.push(SimTime::from_nanos((5 << BUCKET_BITS) + span), "lap1");
        assert_eq!(queue.pop().map(|e| e.payload), Some("lap0"));
        assert_eq!(queue.pop().map(|e| e.payload), Some("lap1"));
        assert!(queue.is_empty());
    }

    #[test]
    fn same_instant_follow_up_pushed_mid_drain_keeps_fifo_order() {
        // A handler scheduling at the instant being drained (zero-latency
        // delivery) must see its event fire after the already-queued
        // same-instant events — FIFO by sequence.
        let mut queue: CalendarQueue<u32> = CalendarQueue::new();
        let t = SimTime::from_secs(2);
        queue.push(t, 0);
        queue.push(t, 1);
        assert_eq!(queue.pop().map(|e| e.payload), Some(0));
        queue.push(t, 2); // lands in the active drain
        assert_eq!(queue.pop().map(|e| e.payload), Some(1));
        assert_eq!(queue.pop().map(|e| e.payload), Some(2));
    }

    #[test]
    fn push_before_cursor_still_delivers_first() {
        // The raw queue is a general priority queue: after draining to 10 s
        // a push at 1 s must still come out before one at 20 s.
        for mut queue in both() {
            queue.push(SimTime::from_secs(10), 10);
            assert_eq!(queue.pop().map(|e| e.payload), Some(10));
            queue.push(SimTime::from_secs(20), 20);
            queue.push(SimTime::from_secs(1), 1);
            assert_eq!(queue.pop().map(|e| e.payload), Some(1));
            assert_eq!(queue.pop().map(|e| e.payload), Some(20));
        }
    }

    #[test]
    fn clear_recycles_but_keeps_sequencing() {
        for mut queue in both() {
            queue.push(SimTime::from_secs(1), 1);
            queue.push(SimTime::from_secs(3600), 2);
            queue.clear();
            assert!(queue.is_empty());
            assert_eq!(queue.pop(), None);
            queue.push(SimTime::from_secs(2), 3);
            let event = queue.pop().expect("event");
            assert_eq!(event.payload, 3);
            // Sequence numbers survive the clear (monotonic FIFO tie-break
            // across the whole queue lifetime).
            assert_eq!(event.sequence, 2);
        }
    }

    #[test]
    fn stats_track_pushes_pops_and_high_water() {
        for mut queue in both() {
            for i in 0..10u32 {
                queue.push(SimTime::from_secs(u64::from(i)), i);
            }
            for _ in 0..4 {
                queue.pop();
            }
            let stats = queue.stats();
            assert_eq!(stats.pushes, 10);
            assert_eq!(stats.pops, 4);
            assert_eq!(stats.max_pending, 10);
            assert_eq!(
                stats.pushes - stats.pops,
                queue.len() as u64,
                "{}",
                queue.scheduler()
            );
        }
    }

    #[test]
    fn scheduler_parses_and_prints_round_trip() {
        for scheduler in [Scheduler::Calendar, Scheduler::Heap] {
            let parsed: Scheduler = scheduler.as_str().parse().expect("round-trips");
            assert_eq!(parsed, scheduler);
        }
        assert!("bogus".parse::<Scheduler>().is_err());
        assert_eq!(Scheduler::default(), Scheduler::Calendar);
    }

    #[test]
    fn dense_burst_interleaving_matches_heap_order() {
        // A miniature deterministic version of the property test: bursty
        // same-instant pushes interleaved with pops, checked against the
        // heap oracle event by event.
        let mut calendar: CalendarQueue<u32> = CalendarQueue::new();
        let mut heap: HeapEventQueue<u32> = HeapEventQueue::new();
        let times: Vec<u64> = (0..400)
            .map(|i: u64| (i * 7919) % 97 * 250_000_000) // bursty, 0..24.25 s
            .collect();
        for (round, &nanos) in times.iter().enumerate() {
            let time = SimTime::from_nanos(nanos);
            let payload = u32::try_from(round).expect("small test index");
            calendar.push(time, payload);
            heap.push(time, payload);
            if round % 3 == 0 {
                let a = calendar.pop();
                let b = heap.pop();
                assert_eq!(a, b);
            }
        }
        loop {
            let a = calendar.pop();
            let b = heap.pop();
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
    }
}
