//! Deterministic discrete-event simulation engine for the ERASMUS
//! reproduction.
//!
//! The paper's evaluation reasons about *timelines*: when measurements are
//! taken (every `T_M`), when collections happen (every `T_C`), when mobile
//! malware enters and leaves, and how long each operation takes on a given
//! device (Figures 1, 6, 8; Table 2). This crate provides the time base and
//! event machinery those experiments run on:
//!
//! * [`SimTime`] / [`SimDuration`] — nanosecond-resolution simulated time.
//! * [`SimClock`] — a monotonically advancing clock handle.
//! * [`EventQueue`] / [`Engine`] — a discrete-event scheduler backed by a
//!   calendar queue (rotating wheel of time buckets), with the original
//!   binary heap retained as a bit-compatible [`Scheduler::Heap`] backend.
//! * [`EventPool`] — a recyclable slab so big event payloads travel as
//!   4-byte slot ids instead of per-event boxes.
//! * [`Trace`] — an append-only record of what happened and when, used by
//!   the QoA analysis and by the `repro` harness to print timelines.
//! * [`SimRng`] — a small deterministic RNG for workload generation
//!   (malware dwell times, mobility), so every experiment is reproducible
//!   from a seed.
//! * [`NetworkModel`] — deterministic per-flow latency/jitter/loss, so the
//!   collection links of a fleet experiment can be lossy while every run
//!   stays reproducible from its seed.
//!
//! # Example
//!
//! ```
//! use erasmus_sim::{Engine, SimTime};
//!
//! let mut engine: Engine<&'static str> = Engine::new();
//! engine.schedule_at(SimTime::from_secs(5), "measurement");
//! engine.schedule_at(SimTime::from_secs(2), "boot");
//! let mut order = Vec::new();
//! while let Some(event) = engine.next_event() {
//!     order.push((event.time.as_secs_f64(), event.payload));
//! }
//! assert_eq!(order, vec![(2.0, "boot"), (5.0, "measurement")]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clock;
pub mod engine;
pub mod event;
pub mod network;
pub mod pool;
pub mod rng;
pub mod time;
pub mod trace;

pub use clock::SimClock;
pub use engine::Engine;
pub use event::{CalendarQueue, EventQueue, HeapEventQueue, QueueStats, ScheduledEvent, Scheduler};
pub use network::{Corruption, Delivery, FaultDraw, NetworkConfig, NetworkModel};
pub use pool::{EventPool, SlotId};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEntry};
