//! Deterministic RNG for workload generation.
//!
//! Experiments need randomness for *workloads* (malware dwell times, swarm
//! mobility, memory contents) that is reproducible from a seed. Security-
//! relevant randomness (the irregular measurement schedule of Section 3.5)
//! does **not** use this type; it uses `erasmus_crypto::HmacDrbg` seeded with
//! the device key, exactly as the paper prescribes.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::time::SimDuration;

/// Seeded pseudo-random generator for experiment workloads.
///
/// # Example
///
/// ```
/// use erasmus_sim::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform value in `[low, high)`.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn gen_range(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "empty range [{low}, {high})");
        self.inner.gen_range(low..high)
    }

    /// Uniform floating-point value in `[0, 1)`.
    pub fn gen_unit(&mut self) -> f64 {
        self.inner.gen_range(0.0..1.0)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not within `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.inner.gen_bool(p)
    }

    /// Uniform duration in `[low, high)`.
    pub fn gen_duration(&mut self, low: SimDuration, high: SimDuration) -> SimDuration {
        SimDuration::from_nanos(self.gen_range(low.as_nanos(), high.as_nanos()))
    }

    /// Exponentially distributed duration with the given mean, useful for
    /// Poisson arrival processes (e.g. malware infection events).
    pub fn gen_exponential(&mut self, mean: SimDuration) -> SimDuration {
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        SimDuration::from_secs_f64(-mean.as_secs_f64() * u.ln())
    }

    /// Fills `buf` with pseudo-random bytes (used to generate device memory
    /// images).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.inner.fill_bytes(buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::seed_from(43);
        assert_ne!(SimRng::seed_from(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respected() {
        let mut rng = SimRng::seed_from(1);
        for _ in 0..1000 {
            let v = rng.gen_range(10, 20);
            assert!((10..20).contains(&v));
            let u = rng.gen_unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn duration_range() {
        let mut rng = SimRng::seed_from(2);
        let low = SimDuration::from_secs(1);
        let high = SimDuration::from_secs(2);
        for _ in 0..100 {
            let d = rng.gen_duration(low, high);
            assert!(d >= low && d < high);
        }
    }

    #[test]
    fn exponential_is_positive_and_roughly_centered() {
        let mut rng = SimRng::seed_from(3);
        let mean = SimDuration::from_secs(10);
        let n = 5000;
        let total: f64 = (0..n)
            .map(|_| rng.gen_exponential(mean).as_secs_f64())
            .sum();
        let empirical_mean = total / n as f64;
        assert!(
            (empirical_mean - 10.0).abs() < 1.0,
            "empirical mean {empirical_mean} too far from 10"
        );
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SimRng::seed_from(4);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let mut rng = SimRng::seed_from(5);
        rng.gen_bool(1.5);
    }

    #[test]
    fn fill_bytes_changes_buffer() {
        let mut rng = SimRng::seed_from(6);
        let mut buf = [0u8; 64];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
