//! Discrete-event simulation engine.

use crate::event::{EventQueue, QueueStats, ScheduledEvent, Scheduler};
use crate::time::{SimDuration, SimTime};

/// A single-clock discrete-event engine.
///
/// The engine owns the event queue and the current time. Pulling the next
/// event advances the clock to that event's timestamp, which is the standard
/// discrete-event semantics: nothing happens between events.
///
/// Scenario drivers in `erasmus-core` and `erasmus-swarm` use this engine to
/// interleave self-measurements, collections, malware arrivals/departures and
/// topology changes on one timeline.
///
/// # Example
///
/// ```
/// use erasmus_sim::{Engine, SimDuration};
///
/// #[derive(Debug, PartialEq)]
/// enum Event { Measure, Collect }
///
/// let mut engine = Engine::new();
/// engine.schedule_in(SimDuration::from_secs(10), Event::Measure);
/// engine.schedule_in(SimDuration::from_secs(60), Event::Collect);
/// let first = engine.next_event().expect("an event is pending");
/// assert_eq!(first.payload, Event::Measure);
/// assert_eq!(engine.now().as_secs_f64(), 10.0);
/// ```
#[derive(Debug)]
pub struct Engine<T> {
    queue: EventQueue<T>,
    now: SimTime,
    processed: u64,
}

impl<T> Engine<T> {
    /// Creates an engine with an empty calendar-queue at time zero.
    pub fn new() -> Self {
        Self::with_scheduler(Scheduler::Calendar)
    }

    /// Creates an engine scheduling on the given queue backend.
    ///
    /// Both backends deliver the identical event order; [`Scheduler::Heap`]
    /// exists as the compatibility/oracle path.
    pub fn with_scheduler(scheduler: Scheduler) -> Self {
        Self {
            queue: EventQueue::with_scheduler(scheduler),
            now: SimTime::ZERO,
            processed: 0,
        }
    }

    /// Which queue backend this engine schedules on.
    pub fn scheduler(&self) -> Scheduler {
        self.queue.scheduler()
    }

    /// Lifetime counters of the underlying event queue.
    pub fn queue_stats(&self) -> QueueStats {
        self.queue.stats()
    }

    /// Current simulated time (the timestamp of the last delivered event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events delivered so far.
    pub fn processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Whether the queue is exhausted.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Schedules `payload` at absolute time `time`.
    ///
    /// # Panics
    ///
    /// Panics if `time` is in the simulated past.
    pub fn schedule_at(&mut self, time: SimTime, payload: T) {
        assert!(
            time >= self.now,
            "cannot schedule an event in the past ({time} < {})",
            self.now
        );
        self.queue.push(time, payload);
    }

    /// Schedules `payload` to fire `delay` after the current time.
    pub fn schedule_in(&mut self, delay: SimDuration, payload: T) {
        self.queue.push(self.now + delay, payload);
    }

    /// Delivers the next event, advancing the clock to its timestamp.
    pub fn next_event(&mut self) -> Option<ScheduledEvent<T>> {
        let event = self.queue.pop()?;
        self.now = event.time;
        self.processed += 1;
        Some(event)
    }

    /// Delivers the next event only if it fires at or before `horizon`.
    ///
    /// Events after the horizon stay queued; the clock advances to the
    /// horizon when it returns `None` so subsequent `schedule_in` calls are
    /// relative to the horizon.
    pub fn next_event_before(&mut self, horizon: SimTime) -> Option<ScheduledEvent<T>> {
        match self.queue.peek_time() {
            Some(t) if t <= horizon => self.next_event(),
            _ => {
                if horizon > self.now {
                    self.now = horizon;
                }
                None
            }
        }
    }

    /// Runs `handler` on every event until the queue is empty or `handler`
    /// returns `false`.
    ///
    /// The handler receives the engine itself, so it can schedule follow-up
    /// events. When the handler also needs mutable access to external state
    /// (devices, counters, a report sink) *and* that state lives in the same
    /// struct as the engine, the borrow checker rejects the capturing
    /// closure — use [`Engine::run_with`] and pass the state as the context
    /// instead.
    ///
    /// Returns the number of events delivered by this call.
    pub fn run<F>(&mut self, mut handler: F) -> u64
    where
        F: FnMut(&mut Self, ScheduledEvent<T>) -> bool,
    {
        self.run_with(&mut (), move |engine, (), event| handler(engine, event))
    }

    /// Runs `handler` on every event, threading a mutable context through
    /// every invocation, until the queue is empty or `handler` returns
    /// `false`.
    ///
    /// This is the event-loop entry point for simulation drivers: the
    /// handler can both schedule follow-up events on the engine *and* mutate
    /// the simulation state (`ctx`) without fighting the borrow checker,
    /// which a closure capturing state from the engine's owner cannot do.
    ///
    /// Returns the number of events delivered by this call.
    ///
    /// # Example
    ///
    /// ```
    /// use erasmus_sim::{Engine, SimDuration};
    ///
    /// let mut engine = Engine::new();
    /// engine.schedule_in(SimDuration::from_secs(1), 0u32);
    /// let mut log = Vec::new();
    /// engine.run_with(&mut log, |engine, log, event| {
    ///     log.push(event.payload);
    ///     if event.payload < 3 {
    ///         engine.schedule_in(SimDuration::from_secs(1), event.payload + 1);
    ///     }
    ///     true
    /// });
    /// assert_eq!(log, vec![0, 1, 2, 3]);
    /// ```
    pub fn run_with<C, F>(&mut self, ctx: &mut C, mut handler: F) -> u64
    where
        F: FnMut(&mut Self, &mut C, ScheduledEvent<T>) -> bool,
    {
        let start = self.processed;
        while let Some(event) = self.next_event() {
            if !handler(self, ctx, event) {
                break;
            }
        }
        self.processed - start
    }
}

impl<T> Default for Engine<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivers_in_time_order_and_advances_clock() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(3), "late");
        engine.schedule_at(SimTime::from_secs(1), "early");
        let first = engine.next_event().expect("first");
        assert_eq!(first.payload, "early");
        assert_eq!(engine.now(), SimTime::from_secs(1));
        let second = engine.next_event().expect("second");
        assert_eq!(second.payload, "late");
        assert_eq!(engine.now(), SimTime::from_secs(3));
        assert!(engine.next_event().is_none());
        assert_eq!(engine.processed(), 2);
        assert!(engine.is_idle());
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut engine: Engine<u8> = Engine::new();
        engine.schedule_at(SimTime::from_secs(10), 1);
        engine.next_event();
        engine.schedule_in(SimDuration::from_secs(5), 2);
        let e = engine.next_event().expect("event");
        assert_eq!(e.time, SimTime::from_secs(15));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_in_the_past_panics() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(10), ());
        engine.next_event();
        engine.schedule_at(SimTime::from_secs(5), ());
    }

    #[test]
    fn horizon_bounded_delivery() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(1), "a");
        engine.schedule_at(SimTime::from_secs(100), "b");
        assert!(engine.next_event_before(SimTime::from_secs(10)).is_some());
        assert!(engine.next_event_before(SimTime::from_secs(10)).is_none());
        // Clock advanced to the horizon, event "b" still pending.
        assert_eq!(engine.now(), SimTime::from_secs(10));
        assert_eq!(engine.pending(), 1);
    }

    #[test]
    fn run_with_handler_can_stop_early() {
        let mut engine = Engine::new();
        for i in 0..10u32 {
            engine.schedule_at(SimTime::from_secs(i as u64), i);
        }
        let delivered = engine.run(|_, event| event.payload < 4);
        assert_eq!(delivered, 5); // events 0..=4 delivered; payload 4 stops the loop
        assert_eq!(engine.pending(), 5);
    }

    #[test]
    fn run_with_threads_context_through_handlers() {
        struct Counters {
            fired: u64,
            rescheduled: u64,
        }
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(1), 0u32);
        let mut counters = Counters {
            fired: 0,
            rescheduled: 0,
        };
        let delivered = engine.run_with(&mut counters, |engine, counters, event| {
            counters.fired += 1;
            if event.payload < 2 {
                counters.rescheduled += 1;
                engine.schedule_in(SimDuration::from_secs(1), event.payload + 1);
            }
            true
        });
        assert_eq!(delivered, 3);
        assert_eq!(counters.fired, 3);
        assert_eq!(counters.rescheduled, 2);
        assert_eq!(engine.now(), SimTime::from_secs(3));
    }

    #[test]
    fn run_with_can_stop_early() {
        let mut engine = Engine::new();
        for i in 0..5u32 {
            engine.schedule_at(SimTime::from_secs(i as u64 + 1), i);
        }
        let mut seen = Vec::new();
        let delivered = engine.run_with(&mut seen, |_, seen, event| {
            seen.push(event.payload);
            event.payload < 2
        });
        assert_eq!(delivered, 3);
        assert_eq!(seen, vec![0, 1, 2]);
        assert_eq!(engine.pending(), 2);
    }

    #[test]
    fn backends_deliver_identical_traces() {
        let mut traces = Vec::new();
        for scheduler in [Scheduler::Calendar, Scheduler::Heap] {
            let mut engine = Engine::with_scheduler(scheduler);
            assert_eq!(engine.scheduler(), scheduler);
            engine.schedule_at(SimTime::from_secs(1), 0u32);
            let mut trace = Vec::new();
            engine.run_with(&mut trace, |engine, trace, event| {
                trace.push((event.time, event.sequence, event.payload));
                if event.payload < 20 {
                    // Mix of near reschedules and same-instant follow-ups.
                    let delay = if event.payload % 4 == 0 {
                        SimDuration::from_secs(0)
                    } else {
                        SimDuration::from_secs(u64::from(event.payload % 7))
                    };
                    engine.schedule_in(delay, event.payload + 1);
                    engine.schedule_in(SimDuration::from_secs(30), event.payload + 100);
                }
                event.payload < 100
            });
            let stats = engine.queue_stats();
            assert_eq!(stats.pops, engine.processed());
            traces.push(trace);
        }
        assert_eq!(traces[0], traces[1]);
    }

    #[test]
    fn handler_can_schedule_new_events() {
        let mut engine = Engine::new();
        engine.schedule_at(SimTime::from_secs(1), 0u32);
        let delivered = engine.run(|engine, event| {
            if event.payload < 5 {
                engine.schedule_in(SimDuration::from_secs(1), event.payload + 1);
            }
            true
        });
        assert_eq!(delivered, 6);
        assert_eq!(engine.now(), SimTime::from_secs(6));
    }
}
