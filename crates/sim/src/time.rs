//! Simulated time: instants and durations with nanosecond resolution.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, measured in nanoseconds since the start of the
/// simulation (device boot).
///
/// The paper's RROC (reliable read-only clock) exposes exactly this kind of
/// monotonically increasing counter; `erasmus-hw`'s `Rroc` is a thin wrapper
/// over a `SimTime`.
///
/// # Example
///
/// ```
/// use erasmus_sim::{SimDuration, SimTime};
///
/// let boot = SimTime::ZERO;
/// let later = boot + SimDuration::from_secs(10);
/// assert_eq!(later.duration_since(boot), SimDuration::from_secs(10));
/// assert!(later > boot);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime {
    nanos: u64,
}

impl SimTime {
    /// The start of the simulation (device boot).
    pub const ZERO: SimTime = SimTime { nanos: 0 };

    /// Creates a time from nanoseconds since boot.
    pub const fn from_nanos(nanos: u64) -> Self {
        Self { nanos }
    }

    /// Creates a time from microseconds since boot.
    pub const fn from_micros(micros: u64) -> Self {
        Self {
            nanos: micros * 1_000,
        }
    }

    /// Creates a time from milliseconds since boot.
    pub const fn from_millis(millis: u64) -> Self {
        Self {
            nanos: millis * 1_000_000,
        }
    }

    /// Creates a time from whole seconds since boot.
    pub const fn from_secs(secs: u64) -> Self {
        Self {
            nanos: secs * 1_000_000_000,
        }
    }

    /// Nanoseconds since boot.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Seconds since boot as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; simulated clocks never run
    /// backwards, so this indicates a logic error in the caller.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        assert!(
            self.nanos >= earlier.nanos,
            "duration_since called with a later time ({} < {})",
            self.nanos,
            earlier.nanos
        );
        SimDuration::from_nanos(self.nanos - earlier.nanos)
    }

    /// Duration since `earlier`, or [`SimDuration::ZERO`] if `earlier` is in
    /// the future.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration::from_nanos(self.nanos.saturating_sub(earlier.nanos))
    }

    /// Adds a duration, saturating at the maximum representable time.
    pub fn saturating_add(self, duration: SimDuration) -> SimTime {
        SimTime::from_nanos(self.nanos.saturating_add(duration.as_nanos()))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime::from_nanos(self.nanos + rhs.nanos)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.nanos += rhs.nanos;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime::from_nanos(self.nanos - rhs.nanos)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

/// A span of simulated time.
///
/// # Example
///
/// ```
/// use erasmus_sim::SimDuration;
///
/// let tm = SimDuration::from_secs(60);
/// assert_eq!(tm / 2, SimDuration::from_secs(30));
/// assert_eq!(tm * 3, SimDuration::from_secs(180));
/// assert_eq!(tm.as_millis(), 60_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration {
    nanos: u64,
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration { nanos: 0 };

    /// Creates a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        Self { nanos }
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        Self {
            nanos: micros * 1_000,
        }
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        Self {
            nanos: millis * 1_000_000,
        }
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        Self {
            nanos: secs * 1_000_000_000,
        }
    }

    /// Creates a duration from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        Self {
            nanos: (secs * 1e9).round() as u64,
        }
    }

    /// Duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Duration in whole microseconds (truncating).
    pub const fn as_micros(self) -> u64 {
        self.nanos / 1_000
    }

    /// Duration in whole milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.nanos / 1_000_000
    }

    /// Duration in whole seconds (truncating).
    pub const fn as_secs(self) -> u64 {
        self.nanos / 1_000_000_000
    }

    /// Duration in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Duration in milliseconds as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.nanos as f64 / 1e6
    }

    /// Whether the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.nanos == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_nanos(self.nanos.saturating_sub(rhs.nanos))
    }

    /// The smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.nanos <= other.nanos {
            self
        } else {
            other
        }
    }

    /// The larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.nanos >= other.nanos {
            self
        } else {
            other
        }
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.nanos < 1_000 {
            write!(f, "{}ns", self.nanos)
        } else if self.nanos < 1_000_000 {
            write!(f, "{:.3}us", self.nanos as f64 / 1e3)
        } else if self.nanos < 1_000_000_000 {
            write!(f, "{:.3}ms", self.nanos as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_nanos(self.nanos + rhs.nanos)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.nanos += rhs.nanos;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration::from_nanos(self.nanos - rhs.nanos)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.nanos -= rhs.nanos;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration::from_nanos(self.nanos * rhs)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration::from_nanos(self.nanos / rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1_000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1_000));
        assert_eq!(SimTime::from_secs(2), SimTime::from_nanos(2_000_000_000));
    }

    #[test]
    fn arithmetic_roundtrip() {
        let start = SimTime::from_secs(10);
        let later = start + SimDuration::from_millis(2500);
        assert_eq!(later.duration_since(start), SimDuration::from_millis(2500));
        assert_eq!(later - start, SimDuration::from_millis(2500));
        assert_eq!(later - SimDuration::from_millis(2500), start);
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(
            late.saturating_duration_since(early),
            SimDuration::from_secs(4)
        );
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(3)),
            SimDuration::ZERO
        );
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_future_panics() {
        let _ = SimTime::from_secs(1).duration_since(SimTime::from_secs(2));
    }

    #[test]
    fn scalar_operations() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d * 3, SimDuration::from_secs(30));
        assert_eq!(d / 4, SimDuration::from_millis(2500));
        assert_eq!(d * 0.5, SimDuration::from_secs(5));
        assert_eq!(d.min(SimDuration::from_secs(3)), SimDuration::from_secs(3));
        assert_eq!(d.max(SimDuration::from_secs(3)), d);
    }

    #[test]
    fn float_seconds_roundtrip() {
        let d = SimDuration::from_secs_f64(1.5);
        assert_eq!(d, SimDuration::from_millis(1500));
        assert!((d.as_secs_f64() - 1.5).abs() < 1e-12);
        assert!((d.as_millis_f64() - 1500.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_seconds_panics() {
        let _ = SimDuration::from_secs_f64(-0.5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "t=1.000000s");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimDuration::from_millis(999) < SimDuration::from_secs(1));
        assert!(!SimDuration::from_secs(1).is_zero());
        assert!(SimDuration::ZERO.is_zero());
    }

    #[test]
    fn truncating_accessors() {
        let d = SimDuration::from_nanos(1_234_567_890);
        assert_eq!(d.as_secs(), 1);
        assert_eq!(d.as_millis(), 1_234);
        assert_eq!(d.as_micros(), 1_234_567);
        assert_eq!(d.as_nanos(), 1_234_567_890);
    }
}
