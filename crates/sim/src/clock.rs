//! A monotonically advancing simulated clock.

use crate::time::{SimDuration, SimTime};

/// A simulated wall clock.
///
/// `SimClock` is the time source used by scenario drivers outside the
/// discrete-event [`Engine`](crate::Engine), e.g. the quickstart example that
/// advances time manually between measurements. It can only move forward,
/// mirroring the paper's reliable read-only clock (RROC) requirement.
///
/// # Example
///
/// ```
/// use erasmus_sim::{SimClock, SimDuration, SimTime};
///
/// let mut clock = SimClock::new();
/// assert_eq!(clock.now(), SimTime::ZERO);
/// clock.advance(SimDuration::from_secs(30));
/// assert_eq!(clock.now(), SimTime::from_secs(30));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// Creates a clock starting at [`SimTime::ZERO`].
    pub fn new() -> Self {
        Self { now: SimTime::ZERO }
    }

    /// Creates a clock starting at an arbitrary instant.
    pub fn starting_at(start: SimTime) -> Self {
        Self { now: start }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advances the clock by `duration` and returns the new time.
    pub fn advance(&mut self, duration: SimDuration) -> SimTime {
        self.now += duration;
        self.now
    }

    /// Moves the clock to `target`.
    ///
    /// # Panics
    ///
    /// Panics if `target` is earlier than the current time: simulated clocks
    /// never run backwards.
    pub fn advance_to(&mut self, target: SimTime) -> SimTime {
        assert!(
            target >= self.now,
            "cannot move clock backwards from {} to {}",
            self.now,
            target
        );
        self.now = target;
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_at_zero() {
        assert_eq!(SimClock::new().now(), SimTime::ZERO);
        assert_eq!(SimClock::default().now(), SimTime::ZERO);
    }

    #[test]
    fn starting_at_arbitrary_time() {
        let clock = SimClock::starting_at(SimTime::from_secs(100));
        assert_eq!(clock.now(), SimTime::from_secs(100));
    }

    #[test]
    fn advance_accumulates() {
        let mut clock = SimClock::new();
        clock.advance(SimDuration::from_secs(1));
        clock.advance(SimDuration::from_millis(500));
        assert_eq!(clock.now(), SimTime::from_millis(1500));
    }

    #[test]
    fn advance_to_moves_forward() {
        let mut clock = SimClock::new();
        let t = clock.advance_to(SimTime::from_secs(42));
        assert_eq!(t, SimTime::from_secs(42));
        // Advancing to the same instant is allowed.
        clock.advance_to(SimTime::from_secs(42));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn advance_to_backwards_panics() {
        let mut clock = SimClock::starting_at(SimTime::from_secs(10));
        clock.advance_to(SimTime::from_secs(5));
    }
}
