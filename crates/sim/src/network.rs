//! Deterministic network model: per-flow latency, jitter and loss.
//!
//! ERASMUS collections cross a real network — the paper prices UDP packet
//! transmission (Table 2) and Section 6 reasons about unattended swarms
//! whose links come and go. [`NetworkModel`] gives simulation drivers a
//! reproducible stand-in for that network: every transmission is either
//! delivered after `base_latency` plus a jitter draw, or dropped with the
//! configured loss probability.
//!
//! Determinism is the whole point. A draw depends only on the model's seed,
//! the caller-chosen *flow* identifier (typically a device id, optionally
//! tagged with a channel) and a per-flow *sequence* number — never on the
//! order in which flows are sampled. A fleet harness that partitions its
//! devices over worker threads therefore observes the exact same delivery
//! pattern at any thread count, which is what keeps lossy benchmark runs
//! reproducible and thread-count-invariant.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Parameters of a simulated link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Fixed one-way latency added to every delivered transmission.
    pub base_latency: SimDuration,
    /// Upper bound (exclusive) of the uniform jitter added on top of
    /// `base_latency`. Zero disables jitter.
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a transmission is dropped.
    pub loss: f64,
}

impl NetworkConfig {
    /// A perfect link: zero latency, zero jitter, zero loss.
    pub const IDEAL: NetworkConfig = NetworkConfig {
        base_latency: SimDuration::ZERO,
        jitter: SimDuration::ZERO,
        loss: 0.0,
    };

    /// Whether the link is perfect — delivery is certain and instantaneous,
    /// so sampling it never consumes randomness.
    pub fn is_ideal(&self) -> bool {
        self.base_latency.is_zero() && self.jitter.is_zero() && self.loss == 0.0
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self::IDEAL
    }
}

/// Outcome of one transmission through a [`NetworkModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The transmission arrives after this one-way latency.
    Delivered(SimDuration),
    /// The transmission is lost.
    Dropped,
}

impl Delivery {
    /// Whether the transmission arrived.
    pub fn is_delivered(&self) -> bool {
        matches!(self, Delivery::Delivered(_))
    }

    /// The latency of a delivered transmission, if any.
    pub fn latency(&self) -> Option<SimDuration> {
        match self {
            Delivery::Delivered(latency) => Some(*latency),
            Delivery::Dropped => None,
        }
    }
}

/// Deterministic per-flow network model.
///
/// # Example
///
/// ```
/// use erasmus_sim::{Delivery, NetworkConfig, NetworkModel, SimDuration};
///
/// let config = NetworkConfig {
///     base_latency: SimDuration::from_millis(20),
///     jitter: SimDuration::from_millis(10),
///     loss: 0.0,
/// };
/// let model = NetworkModel::new(config, 42);
/// match model.sample(7, 0) {
///     Delivery::Delivered(latency) => {
///         assert!(latency >= SimDuration::from_millis(20));
///         assert!(latency < SimDuration::from_millis(30));
///     }
///     Delivery::Dropped => unreachable!("loss is zero"),
/// }
/// // Same (flow, sequence) → same draw, regardless of sampling order.
/// assert_eq!(model.sample(7, 0), model.sample(7, 0));
/// ```
#[derive(Debug, Clone)]
pub struct NetworkModel {
    config: NetworkConfig,
    seed: u64,
}

impl NetworkModel {
    /// Creates a model over `config`, with all draws derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a probability in `[0, 1]` or the latency
    /// parameters are not finite (checked implicitly by `SimDuration`).
    pub fn new(config: NetworkConfig, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.loss),
            "loss probability out of range: {}",
            config.loss
        );
        Self { config, seed }
    }

    /// A perfect network: everything is delivered instantly.
    pub fn ideal() -> Self {
        Self::new(NetworkConfig::IDEAL, 0)
    }

    /// The link parameters.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The seed all draws derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the underlying link is perfect.
    pub fn is_ideal(&self) -> bool {
        self.config.is_ideal()
    }

    /// Samples the fate of transmission number `sequence` on `flow`.
    ///
    /// The draw is a pure function of `(seed, flow, sequence)`: callers may
    /// sample flows in any order — or from different threads on clones of
    /// the model — and observe identical outcomes. Use distinct flow ids for
    /// distinct logical channels (e.g. `device * 4 + channel`) so their
    /// streams stay independent.
    pub fn sample(&self, flow: u64, sequence: u64) -> Delivery {
        if self.config.is_ideal() {
            return Delivery::Delivered(SimDuration::ZERO);
        }
        let mut rng = SimRng::seed_from(mix3(self.seed, flow, sequence));
        if self.config.loss > 0.0 && rng.gen_bool(self.config.loss) {
            return Delivery::Dropped;
        }
        let jitter = if self.config.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            rng.gen_duration(SimDuration::ZERO, self.config.jitter)
        };
        Delivery::Delivered(self.config.base_latency + jitter)
    }
}

/// SplitMix64-style finalizer: a cheap bijective scrambler with good
/// avalanche, so adjacent (flow, sequence) pairs land on unrelated seeds.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

fn mix3(seed: u64, flow: u64, sequence: u64) -> u64 {
    mix(seed
        .wrapping_add(mix(flow.wrapping_add(0x9e37_79b9_7f4a_7c15)))
        .wrapping_add(mix(sequence.wrapping_add(0x6a09_e667_f3bc_c909))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(loss: f64) -> NetworkModel {
        NetworkModel::new(
            NetworkConfig {
                base_latency: SimDuration::from_millis(5),
                jitter: SimDuration::from_millis(5),
                loss,
            },
            1234,
        )
    }

    #[test]
    fn ideal_link_is_instant_and_lossless() {
        let model = NetworkModel::ideal();
        assert!(model.is_ideal());
        for flow in 0..100 {
            assert_eq!(
                model.sample(flow, 0),
                Delivery::Delivered(SimDuration::ZERO)
            );
        }
    }

    #[test]
    fn draws_are_pure_functions_of_flow_and_sequence() {
        let model = lossy(0.2);
        let forward: Vec<Delivery> = (0..64).map(|f| model.sample(f, 3)).collect();
        let backward: Vec<Delivery> = (0..64).rev().map(|f| model.sample(f, 3)).collect();
        let backward: Vec<Delivery> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
        // A clone (as a worker thread would hold) sees the same world.
        let clone = model.clone();
        for flow in 0..64 {
            assert_eq!(model.sample(flow, 3), clone.sample(flow, 3));
        }
    }

    #[test]
    fn latency_respects_base_and_jitter_bounds() {
        let model = lossy(0.0);
        for flow in 0..32 {
            for seq in 0..8 {
                match model.sample(flow, seq) {
                    Delivery::Delivered(latency) => {
                        assert!(latency >= SimDuration::from_millis(5));
                        assert!(latency < SimDuration::from_millis(10));
                    }
                    Delivery::Dropped => panic!("lossless link dropped a packet"),
                }
            }
        }
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let model = lossy(0.25);
        let drops = (0..4000)
            .filter(|&seq| !model.sample(seq % 40, seq / 40).is_delivered())
            .count();
        let rate = drops as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "observed loss rate {rate}");
    }

    #[test]
    fn distinct_flows_and_seeds_decorrelate() {
        let a = lossy(0.5);
        let b = NetworkModel::new(*a.config(), 5678);
        let a_flow0: Vec<bool> = (0..64).map(|s| a.sample(0, s).is_delivered()).collect();
        let a_flow1: Vec<bool> = (0..64).map(|s| a.sample(1, s).is_delivered()).collect();
        let b_flow0: Vec<bool> = (0..64).map(|s| b.sample(0, s).is_delivered()).collect();
        assert_ne!(a_flow0, a_flow1);
        assert_ne!(a_flow0, b_flow0);
    }

    #[test]
    fn delivery_accessors() {
        let delivered = Delivery::Delivered(SimDuration::from_millis(3));
        assert!(delivered.is_delivered());
        assert_eq!(delivered.latency(), Some(SimDuration::from_millis(3)));
        assert!(!Delivery::Dropped.is_delivered());
        assert_eq!(Delivery::Dropped.latency(), None);
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_probability_panics() {
        let _ = NetworkModel::new(
            NetworkConfig {
                loss: 1.5,
                ..NetworkConfig::IDEAL
            },
            0,
        );
    }
}
