//! Deterministic network model: per-flow latency, jitter and loss.
//!
//! ERASMUS collections cross a real network — the paper prices UDP packet
//! transmission (Table 2) and Section 6 reasons about unattended swarms
//! whose links come and go. [`NetworkModel`] gives simulation drivers a
//! reproducible stand-in for that network: every transmission is either
//! delivered after `base_latency` plus a jitter draw, or dropped with the
//! configured loss probability.
//!
//! Determinism is the whole point. A draw depends only on the model's seed,
//! the caller-chosen *flow* identifier (typically a device id, optionally
//! tagged with a channel) and a per-flow *sequence* number — never on the
//! order in which flows are sampled. A fleet harness that partitions its
//! devices over worker threads therefore observes the exact same delivery
//! pattern at any thread count, which is what keeps lossy benchmark runs
//! reproducible and thread-count-invariant.
//!
//! Beyond loss and latency the model can inject three further fault
//! families — **duplication**, **reordering** (as an extra delivery delay)
//! and **byte corruption** — via [`NetworkModel::sample_faults`]. Fault
//! draws live on their own seed stream, so enabling them never perturbs the
//! loss/jitter pattern an existing `(seed, flow, sequence)` run observed:
//! reliability experiments stay comparable against their fault-free
//! baselines bit for bit.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Parameters of a simulated link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkConfig {
    /// Fixed one-way latency added to every delivered transmission.
    pub base_latency: SimDuration,
    /// Upper bound (exclusive) of the uniform jitter added on top of
    /// `base_latency`. Zero disables jitter.
    pub jitter: SimDuration,
    /// Probability in `[0, 1]` that a transmission is dropped.
    pub loss: f64,
    /// Probability in `[0, 1]` that a transmission is duplicated: the
    /// original arrives normally and an echo copy arrives after an extra
    /// delay drawn from the fault stream.
    pub duplicate: f64,
    /// Probability in `[0, 1]` that a transmission is reordered: it still
    /// arrives, but only after an extra delay drawn from the fault stream,
    /// letting later sequence numbers overtake it.
    pub reorder: f64,
    /// Probability in `[0, 1]` that a transmission arrives with one payload
    /// byte flipped in flight.
    pub corrupt: f64,
}

impl NetworkConfig {
    /// A perfect link: zero latency, zero jitter, zero loss, zero faults.
    pub const IDEAL: NetworkConfig = NetworkConfig {
        base_latency: SimDuration::ZERO,
        jitter: SimDuration::ZERO,
        loss: 0.0,
        duplicate: 0.0,
        reorder: 0.0,
        corrupt: 0.0,
    };

    /// Whether the link is perfect — delivery is certain and instantaneous,
    /// so sampling it never consumes randomness.
    pub fn is_ideal(&self) -> bool {
        self.base_latency.is_zero()
            && self.jitter.is_zero()
            && self.loss == 0.0
            && !self.has_faults()
    }

    /// Whether any of the injected-fault probabilities is non-zero.
    pub fn has_faults(&self) -> bool {
        self.duplicate > 0.0 || self.reorder > 0.0 || self.corrupt > 0.0
    }
}

impl Default for NetworkConfig {
    fn default() -> Self {
        Self::IDEAL
    }
}

/// Outcome of one transmission through a [`NetworkModel`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Delivery {
    /// The transmission arrives after this one-way latency.
    Delivered(SimDuration),
    /// The transmission is lost.
    Dropped,
}

impl Delivery {
    /// Whether the transmission arrived.
    pub fn is_delivered(&self) -> bool {
        matches!(self, Delivery::Delivered(_))
    }

    /// The latency of a delivered transmission, if any.
    pub fn latency(&self) -> Option<SimDuration> {
        match self {
            Delivery::Delivered(latency) => Some(*latency),
            Delivery::Dropped => None,
        }
    }
}

/// An in-flight single-byte corruption drawn from the fault stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Corruption {
    /// When true the corruption hits framing metadata (lengths, counts) and
    /// the receiver's decoder is expected to reject the whole frame; when
    /// false it hits authenticated payload bytes and should surface as a
    /// MAC/tampering failure instead.
    pub structural: bool,
    /// Non-zero XOR mask applied to the victim byte.
    pub mask: u8,
    /// Entropy for the caller to pick the victim byte deterministically
    /// (e.g. `entropy % payload_len`).
    pub entropy: u64,
}

/// The injected-fault draw for one transmission.
///
/// Sampled by [`NetworkModel::sample_faults`] on a seed stream independent
/// of the loss/latency draw, so a clean draw here never changes the fate an
/// existing run observed for the same `(flow, sequence)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultDraw {
    /// `Some(extra)` when the transmission is duplicated: the echo copy
    /// arrives `extra` after the original.
    pub duplicate: Option<SimDuration>,
    /// `Some(extra)` when the transmission is reordered: it arrives `extra`
    /// later than its loss/latency draw said, letting successors overtake.
    pub reorder: Option<SimDuration>,
    /// `Some(corruption)` when one payload byte flips in flight.
    pub corrupt: Option<Corruption>,
}

impl FaultDraw {
    /// A draw with no fault injected.
    pub const CLEAN: FaultDraw = FaultDraw {
        duplicate: None,
        reorder: None,
        corrupt: None,
    };

    /// Whether the transmission sails through unfaulted.
    pub fn is_clean(&self) -> bool {
        *self == Self::CLEAN
    }
}

/// Deterministic per-flow network model.
///
/// # Example
///
/// ```
/// use erasmus_sim::{Delivery, NetworkConfig, NetworkModel, SimDuration};
///
/// let config = NetworkConfig {
///     base_latency: SimDuration::from_millis(20),
///     jitter: SimDuration::from_millis(10),
///     ..NetworkConfig::IDEAL
/// };
/// let model = NetworkModel::new(config, 42);
/// match model.sample(7, 0) {
///     Delivery::Delivered(latency) => {
///         assert!(latency >= SimDuration::from_millis(20));
///         assert!(latency < SimDuration::from_millis(30));
///     }
///     Delivery::Dropped => unreachable!("loss is zero"),
/// }
/// // Same (flow, sequence) → same draw, regardless of sampling order.
/// assert_eq!(model.sample(7, 0), model.sample(7, 0));
/// ```
#[derive(Debug, Clone)]
pub struct NetworkModel {
    config: NetworkConfig,
    seed: u64,
}

impl NetworkModel {
    /// Creates a model over `config`, with all draws derived from `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a probability in `[0, 1]` or the latency
    /// parameters are not finite (checked implicitly by `SimDuration`).
    pub fn new(config: NetworkConfig, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&config.loss),
            "loss probability out of range: {}",
            config.loss
        );
        for (name, p) in [
            ("duplicate", config.duplicate),
            ("reorder", config.reorder),
            ("corrupt", config.corrupt),
        ] {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name} probability out of range: {p}"
            );
        }
        Self { config, seed }
    }

    /// A perfect network: everything is delivered instantly.
    pub fn ideal() -> Self {
        Self::new(NetworkConfig::IDEAL, 0)
    }

    /// The link parameters.
    pub fn config(&self) -> &NetworkConfig {
        &self.config
    }

    /// The seed all draws derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the underlying link is perfect.
    pub fn is_ideal(&self) -> bool {
        self.config.is_ideal()
    }

    /// Samples the fate of transmission number `sequence` on `flow`.
    ///
    /// The draw is a pure function of `(seed, flow, sequence)`: callers may
    /// sample flows in any order — or from different threads on clones of
    /// the model — and observe identical outcomes. Use distinct flow ids for
    /// distinct logical channels (e.g. `device * 4 + channel`) so their
    /// streams stay independent.
    pub fn sample(&self, flow: u64, sequence: u64) -> Delivery {
        if self.config.is_ideal() {
            return Delivery::Delivered(SimDuration::ZERO);
        }
        let mut rng = SimRng::seed_from(mix3(self.seed, flow, sequence));
        if self.config.loss > 0.0 && rng.gen_bool(self.config.loss) {
            return Delivery::Dropped;
        }
        let jitter = if self.config.jitter.is_zero() {
            SimDuration::ZERO
        } else {
            rng.gen_duration(SimDuration::ZERO, self.config.jitter)
        };
        Delivery::Delivered(self.config.base_latency + jitter)
    }

    /// Whether any injected-fault probability is non-zero.
    pub fn has_faults(&self) -> bool {
        self.config.has_faults()
    }

    /// Samples the injected faults for transmission `sequence` on `flow`.
    ///
    /// Like [`NetworkModel::sample`] this is a pure function of
    /// `(seed, flow, sequence)`, but it runs on a separate seed stream:
    /// turning fault injection on (or off) leaves the loss/latency pattern
    /// of every transmission untouched. With all fault probabilities at
    /// zero it consumes no randomness and returns [`FaultDraw::CLEAN`].
    ///
    /// Draw order is fixed — duplicate, reorder, corrupt — and each draw
    /// only happens when its probability is non-zero, so enabling one fault
    /// family does not shift the draws of another.
    pub fn sample_faults(&self, flow: u64, sequence: u64) -> FaultDraw {
        if !self.config.has_faults() {
            return FaultDraw::CLEAN;
        }
        let mut rng = SimRng::seed_from(mix3(self.seed ^ FAULT_STREAM, flow, sequence));
        let mut draw = FaultDraw::CLEAN;
        if self.config.duplicate > 0.0 && rng.gen_bool(self.config.duplicate) {
            draw.duplicate = Some(self.extra_delay(&mut rng));
        }
        if self.config.reorder > 0.0 && rng.gen_bool(self.config.reorder) {
            draw.reorder = Some(self.extra_delay(&mut rng));
        }
        if self.config.corrupt > 0.0 && rng.gen_bool(self.config.corrupt) {
            draw.corrupt = Some(Corruption {
                structural: rng.next_u64() & 1 == 0,
                mask: (rng.gen_range(1, 256)) as u8,
                entropy: rng.next_u64(),
            });
        }
        draw
    }

    /// Extra delay for duplicated/reordered copies: a uniform draw over
    /// `[span/4, span)` where `span` is four round-trip-ish link delays,
    /// floored at one millisecond so even an otherwise-ideal link reorders
    /// by a visible amount.
    fn extra_delay(&self, rng: &mut SimRng) -> SimDuration {
        let link = self.config.base_latency + self.config.jitter;
        let span = (link * 4).max(SimDuration::from_millis(1));
        rng.gen_duration(span / 4, span)
    }
}

/// Salt separating the injected-fault stream from the loss/latency stream.
const FAULT_STREAM: u64 = 0x6661_756c_7421_7331;

/// SplitMix64-style finalizer: a cheap bijective scrambler with good
/// avalanche, so adjacent (flow, sequence) pairs land on unrelated seeds.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

fn mix3(seed: u64, flow: u64, sequence: u64) -> u64 {
    mix(seed
        .wrapping_add(mix(flow.wrapping_add(0x9e37_79b9_7f4a_7c15)))
        .wrapping_add(mix(sequence.wrapping_add(0x6a09_e667_f3bc_c909))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lossy(loss: f64) -> NetworkModel {
        NetworkModel::new(
            NetworkConfig {
                base_latency: SimDuration::from_millis(5),
                jitter: SimDuration::from_millis(5),
                loss,
                ..NetworkConfig::IDEAL
            },
            1234,
        )
    }

    fn faulty() -> NetworkModel {
        NetworkModel::new(
            NetworkConfig {
                base_latency: SimDuration::from_millis(5),
                jitter: SimDuration::from_millis(5),
                loss: 0.1,
                duplicate: 0.2,
                reorder: 0.2,
                corrupt: 0.2,
            },
            1234,
        )
    }

    #[test]
    fn ideal_link_is_instant_and_lossless() {
        let model = NetworkModel::ideal();
        assert!(model.is_ideal());
        for flow in 0..100 {
            assert_eq!(
                model.sample(flow, 0),
                Delivery::Delivered(SimDuration::ZERO)
            );
        }
    }

    #[test]
    fn draws_are_pure_functions_of_flow_and_sequence() {
        let model = lossy(0.2);
        let forward: Vec<Delivery> = (0..64).map(|f| model.sample(f, 3)).collect();
        let backward: Vec<Delivery> = (0..64).rev().map(|f| model.sample(f, 3)).collect();
        let backward: Vec<Delivery> = backward.into_iter().rev().collect();
        assert_eq!(forward, backward);
        // A clone (as a worker thread would hold) sees the same world.
        let clone = model.clone();
        for flow in 0..64 {
            assert_eq!(model.sample(flow, 3), clone.sample(flow, 3));
        }
    }

    #[test]
    fn latency_respects_base_and_jitter_bounds() {
        let model = lossy(0.0);
        for flow in 0..32 {
            for seq in 0..8 {
                match model.sample(flow, seq) {
                    Delivery::Delivered(latency) => {
                        assert!(latency >= SimDuration::from_millis(5));
                        assert!(latency < SimDuration::from_millis(10));
                    }
                    Delivery::Dropped => panic!("lossless link dropped a packet"),
                }
            }
        }
    }

    #[test]
    fn loss_rate_is_roughly_honoured() {
        let model = lossy(0.25);
        let drops = (0..4000)
            .filter(|&seq| !model.sample(seq % 40, seq / 40).is_delivered())
            .count();
        let rate = drops as f64 / 4000.0;
        assert!((rate - 0.25).abs() < 0.05, "observed loss rate {rate}");
    }

    #[test]
    fn distinct_flows_and_seeds_decorrelate() {
        let a = lossy(0.5);
        let b = NetworkModel::new(*a.config(), 5678);
        let a_flow0: Vec<bool> = (0..64).map(|s| a.sample(0, s).is_delivered()).collect();
        let a_flow1: Vec<bool> = (0..64).map(|s| a.sample(1, s).is_delivered()).collect();
        let b_flow0: Vec<bool> = (0..64).map(|s| b.sample(0, s).is_delivered()).collect();
        assert_ne!(a_flow0, a_flow1);
        assert_ne!(a_flow0, b_flow0);
    }

    #[test]
    fn delivery_accessors() {
        let delivered = Delivery::Delivered(SimDuration::from_millis(3));
        assert!(delivered.is_delivered());
        assert_eq!(delivered.latency(), Some(SimDuration::from_millis(3)));
        assert!(!Delivery::Dropped.is_delivered());
        assert_eq!(Delivery::Dropped.latency(), None);
    }

    #[test]
    fn fault_draws_are_pure_and_do_not_perturb_delivery() {
        let clean = lossy(0.1);
        let faulted = NetworkModel::new(
            NetworkConfig {
                duplicate: 0.2,
                reorder: 0.2,
                corrupt: 0.2,
                ..*clean.config()
            },
            1234,
        );
        assert!(!clean.has_faults());
        assert!(faulted.has_faults());
        for flow in 0..64 {
            for seq in 0..4 {
                // Turning faults on never changes the loss/latency fate.
                assert_eq!(clean.sample(flow, seq), faulted.sample(flow, seq));
                // Fault draws are pure functions of (flow, sequence).
                assert_eq!(
                    faulted.sample_faults(flow, seq),
                    faulted.sample_faults(flow, seq)
                );
                // A fault-free model consumes no randomness at all.
                assert_eq!(clean.sample_faults(flow, seq), FaultDraw::CLEAN);
            }
        }
    }

    #[test]
    fn fault_rates_are_roughly_honoured_and_well_formed() {
        let model = faulty();
        let mut duplicated = 0usize;
        let mut reordered = 0usize;
        let mut corrupted = 0usize;
        let total = 4000u64;
        for seq in 0..total {
            let draw = model.sample_faults(seq % 40, seq / 40);
            if let Some(extra) = draw.duplicate {
                duplicated += 1;
                assert!(extra >= SimDuration::from_millis(10));
                assert!(extra < SimDuration::from_millis(40));
            }
            if let Some(extra) = draw.reorder {
                reordered += 1;
                assert!(!extra.is_zero());
            }
            if let Some(corruption) = draw.corrupt {
                corrupted += 1;
                assert_ne!(corruption.mask, 0, "zero mask would be a no-op flip");
            }
        }
        for (name, hits) in [
            ("duplicate", duplicated),
            ("reorder", reordered),
            ("corrupt", corrupted),
        ] {
            let rate = hits as f64 / total as f64;
            assert!((rate - 0.2).abs() < 0.05, "observed {name} rate {rate}");
        }
    }

    #[test]
    fn single_fault_family_draws_are_independent() {
        // Enabling one family must not shift the draws of another: a
        // corrupt-only model and an all-faults model agree on every
        // corruption the corrupt-only model observes... they cannot be
        // compared draw-for-draw (gating changes the rng stream), but the
        // corrupt-only model must still hit roughly its configured rate.
        let corrupt_only = NetworkModel::new(
            NetworkConfig {
                corrupt: 0.2,
                ..NetworkConfig::IDEAL
            },
            1234,
        );
        assert!(!corrupt_only.is_ideal());
        let hits = (0..2000)
            .filter(|&seq| corrupt_only.sample_faults(7, seq).corrupt.is_some())
            .count();
        let rate = hits as f64 / 2000.0;
        assert!((rate - 0.2).abs() < 0.05, "observed corrupt rate {rate}");
        // An otherwise-ideal link still reorders by a visible amount.
        let reorder_only = NetworkModel::new(
            NetworkConfig {
                reorder: 1.0,
                ..NetworkConfig::IDEAL
            },
            1,
        );
        let draw = reorder_only.sample_faults(0, 0);
        assert!(draw.reorder.is_some_and(|extra| !extra.is_zero()));
        assert!(draw.duplicate.is_none() && draw.corrupt.is_none());
    }

    #[test]
    #[should_panic(expected = "corrupt probability")]
    fn invalid_fault_probability_panics() {
        let _ = NetworkModel::new(
            NetworkConfig {
                corrupt: -0.2,
                ..NetworkConfig::IDEAL
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "loss probability")]
    fn invalid_loss_probability_panics() {
        let _ = NetworkModel::new(
            NetworkConfig {
                loss: 1.5,
                ..NetworkConfig::IDEAL
            },
            0,
        );
    }
}
