//! Slab-style event pool: index-linked payload slots instead of per-event
//! heap boxes.
//!
//! Large event payloads (collection responses, on-demand exchanges) used to
//! ride inside the queue as boxed values, costing an allocation per event.
//! [`EventPool`] stores them in a slab — a `Vec` of recyclable slots — so
//! the queue carries a 4-byte [`SlotId`] and the payload memory is reused
//! across the run. Slots are recycled LIFO, which keeps the hot slots
//! cache-warm and, more importantly, keeps allocation *deterministic*: the
//! slot a payload lands in depends only on the sequence of
//! [`insert`](EventPool::insert)/[`take`](EventPool::take) calls, never on
//! an allocator or address.
//!
//! The pool tracks a high-water mark ([`EventPool::high_water`]) surfaced
//! into the perfbench schema; the fleet determinism tests assert it stays
//! bounded under churn, pinning the stale-event slot-recycling fix.

/// Index of a live slot in an [`EventPool`].
///
/// Deliberately `Copy` and small: this is what event payloads carry through
/// the scheduler instead of the pooled value itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct SlotId(u32);

impl SlotId {
    /// The raw slot index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A recyclable slab of payload slots.
///
/// # Example
///
/// ```
/// use erasmus_sim::EventPool;
///
/// let mut pool: EventPool<String> = EventPool::new();
/// let id = pool.insert("payload".to_string());
/// assert_eq!(pool.get(id), Some(&"payload".to_string()));
/// let payload = pool.take(id).expect("slot is live");
/// assert_eq!(payload, "payload");
/// assert!(pool.is_empty());
/// // The freed slot is recycled by the next insert.
/// let reused = pool.insert("next".to_string());
/// assert_eq!(reused, id);
/// ```
#[derive(Debug, Clone)]
pub struct EventPool<T> {
    slots: Vec<Option<T>>,
    /// Free slot indices, recycled LIFO.
    free: Vec<u32>,
    live: usize,
    high_water: usize,
}

impl<T> EventPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            high_water: 0,
        }
    }

    /// Stores `value`, reusing a freed slot when one exists.
    pub fn insert(&mut self, value: T) -> SlotId {
        self.live += 1;
        self.high_water = self.high_water.max(self.live);
        if let Some(index) = self.free.pop() {
            debug_assert!(self.slots[index as usize].is_none());
            self.slots[index as usize] = Some(value);
            SlotId(index)
        } else {
            let index = u32::try_from(self.slots.len()).expect("pool exceeds u32 slots");
            self.slots.push(Some(value));
            SlotId(index)
        }
    }

    /// Removes and returns the value in `id`, recycling the slot.
    ///
    /// Returns `None` if the slot was already taken — callers treat that as
    /// a logic error and assert on it.
    pub fn take(&mut self, id: SlotId) -> Option<T> {
        let value = self.slots.get_mut(id.index())?.take()?;
        self.free.push(id.0);
        self.live -= 1;
        Some(value)
    }

    /// Borrows the value in `id`, if live.
    pub fn get(&self, id: SlotId) -> Option<&T> {
        self.slots.get(id.index())?.as_ref()
    }

    /// Mutably borrows the value in `id`, if live.
    pub fn get_mut(&mut self, id: SlotId) -> Option<&mut T> {
        self.slots.get_mut(id.index())?.as_mut()
    }

    /// Number of live slots.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no slots are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Most slots ever live at once — the pool's memory footprint.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

impl<T> Default for EventPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_round_trips() {
        let mut pool = EventPool::new();
        let a = pool.insert(10u32);
        let b = pool.insert(20u32);
        assert_eq!(pool.len(), 2);
        assert_eq!(pool.get(a), Some(&10));
        assert_eq!(pool.get_mut(b).map(|v| std::mem::replace(v, 25)), Some(20));
        assert_eq!(pool.take(b), Some(25));
        assert_eq!(pool.take(b), None, "double-take is rejected");
        assert_eq!(pool.take(a), Some(10));
        assert!(pool.is_empty());
    }

    #[test]
    fn slots_recycle_lifo_and_bound_high_water() {
        let mut pool = EventPool::new();
        let first = pool.insert(0u32);
        pool.take(first);
        // Churn: insert/take pairs must not grow the slab.
        for round in 0..1000u32 {
            let id = pool.insert(round);
            assert_eq!(id, first, "freed slot is reused");
            pool.take(id);
        }
        assert_eq!(pool.high_water(), 1);
    }

    #[test]
    fn high_water_tracks_peak_not_current() {
        let mut pool = EventPool::new();
        let ids: Vec<_> = (0..8u32).map(|v| pool.insert(v)).collect();
        for id in ids {
            pool.take(id);
        }
        assert!(pool.is_empty());
        assert_eq!(pool.high_water(), 8);
    }

    #[test]
    fn recycling_is_deterministic() {
        // Two pools fed the same insert/take sequence hand out identical
        // slot ids — allocation is part of the deterministic state.
        let mut a = EventPool::new();
        let mut b = EventPool::new();
        let mut ids_a = Vec::new();
        let mut ids_b = Vec::new();
        for round in 0..50u32 {
            ids_a.push(a.insert(round));
            ids_b.push(b.insert(round));
            if round % 3 == 0 {
                let id_a = ids_a.remove(0);
                let id_b = ids_b.remove(0);
                assert_eq!(a.take(id_a), b.take(id_b));
            }
        }
        assert_eq!(ids_a, ids_b);
    }
}
