//! Property-based tests for the cryptographic substrate.

use erasmus_crypto::{
    constant_time_eq, Blake2s, Digest, HmacDrbg, HmacSha256, MacAlgorithm, Sha1, Sha256,
};
use proptest::prelude::*;

proptest! {
    /// Hashing the same input twice gives the same digest; hashing in chunks
    /// gives the same digest as hashing in one shot.
    #[test]
    fn sha256_chunking_invariant(data in proptest::collection::vec(any::<u8>(), 0..2048), split in 0usize..2048) {
        let split = split.min(data.len());
        let mut hasher = Sha256::new();
        hasher.update(&data[..split]);
        hasher.update(&data[split..]);
        prop_assert_eq!(hasher.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn sha1_chunking_invariant(data in proptest::collection::vec(any::<u8>(), 0..2048), split in 0usize..2048) {
        let split = split.min(data.len());
        let mut hasher = Sha1::new();
        hasher.update(&data[..split]);
        hasher.update(&data[split..]);
        prop_assert_eq!(hasher.finalize(), Sha1::digest(&data));
    }

    #[test]
    fn blake2s_chunking_invariant(data in proptest::collection::vec(any::<u8>(), 0..2048), split in 0usize..2048) {
        let split = split.min(data.len());
        let mut hasher = Blake2s::new();
        hasher.update(&data[..split]);
        hasher.update(&data[split..]);
        prop_assert_eq!(hasher.finalize(), Blake2s::digest(&data));
    }

    /// Digest length is constant regardless of input.
    #[test]
    fn digest_lengths(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        prop_assert_eq!(Sha256::digest(&data).len(), 32);
        prop_assert_eq!(Sha1::digest(&data).len(), 20);
        prop_assert_eq!(Blake2s::digest(&data).len(), 32);
    }

    /// A MAC verifies under the key and message it was computed with, for
    /// every algorithm.
    #[test]
    fn mac_roundtrip(
        key in proptest::collection::vec(any::<u8>(), 0..64),
        message in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        for alg in MacAlgorithm::ALL {
            let tag = alg.mac(&key, &message);
            prop_assert!(alg.verify(&key, &message, &tag));
            prop_assert_eq!(tag.len(), alg.tag_len());
        }
    }

    /// Flipping any single bit of the message invalidates the tag.
    #[test]
    fn mac_detects_bit_flips(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        message in proptest::collection::vec(any::<u8>(), 1..256),
        byte_index in 0usize..256,
        bit in 0u8..8,
    ) {
        let byte_index = byte_index % message.len();
        for alg in MacAlgorithm::ALL {
            let tag = alg.mac(&key, &message);
            let mut tampered = message.clone();
            tampered[byte_index] ^= 1 << bit;
            prop_assert!(!alg.verify(&key, &tampered, &tag), "{alg} accepted a tampered message");
        }
    }

    /// Flipping any single bit of the tag makes verification fail.
    #[test]
    fn mac_detects_tag_tampering(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        message in proptest::collection::vec(any::<u8>(), 0..256),
        byte_index in 0usize..64,
        bit in 0u8..8,
    ) {
        for alg in MacAlgorithm::ALL {
            let tag = alg.mac(&key, &message);
            let mut bytes = tag.into_bytes();
            let idx = byte_index % bytes.len();
            bytes[idx] ^= 1 << bit;
            prop_assert!(!alg.verify(&key, &message, &bytes.into()));
        }
    }

    /// HMAC is deterministic.
    #[test]
    fn hmac_deterministic(
        key in proptest::collection::vec(any::<u8>(), 0..128),
        message in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        prop_assert_eq!(HmacSha256::mac(&key, &message), HmacSha256::mac(&key, &message));
    }

    /// constant_time_eq agrees with ==.
    #[test]
    fn ct_eq_matches_plain_eq(
        a in proptest::collection::vec(any::<u8>(), 0..64),
        b in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        prop_assert_eq!(constant_time_eq(&a, &b), a == b);
        prop_assert!(constant_time_eq(&a, &a));
    }

    /// The DRBG always respects range bounds and is deterministic per seed.
    #[test]
    fn drbg_range_and_determinism(
        seed in proptest::collection::vec(any::<u8>(), 1..64),
        low in 0u64..1_000_000,
        span in 1u64..1_000_000,
        draws in 1usize..50,
    ) {
        let high = low + span;
        let mut a = HmacDrbg::new(&seed, b"proptest");
        let mut b = HmacDrbg::new(&seed, b"proptest");
        for _ in 0..draws {
            let va = a.next_in_range(low, high);
            let vb = b.next_in_range(low, high);
            prop_assert_eq!(va, vb);
            prop_assert!(va >= low && va < high);
        }
    }
}
