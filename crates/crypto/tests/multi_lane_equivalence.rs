//! Equivalence suite for the lane-interleaved cores: every lane of
//! [`Sha256xN`], [`Blake2sxN`] and [`MultiKeyedMac`] must produce digests
//! and tags bit-identical to the scalar [`Sha256`], [`Blake2s`] and
//! [`KeyedMac`] paths — on known-answer vectors, on random inputs, at every
//! supported width, and for the ragged-remainder partitions the fleet
//! harness produces (full 8-lane groups, then 4-lane groups, then scalar
//! leftovers over one work list).

use erasmus_crypto::{
    Blake2s, Blake2sx4, Blake2sx8, Digest, KeyedMac, MacAlgorithm, MacTag, MultiDigest,
    MultiKeyedMac, Sha256, Sha256x4, Sha256x8,
};
use proptest::prelude::*;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

// ---------------------------------------------------------------------------
// Known-answer vectors: the lanes must reproduce the specs, not just agree
// with the scalar code.
// ---------------------------------------------------------------------------

#[test]
fn sha256_lanes_reproduce_fips_vectors() {
    // FIPS 180-2 one-block and two-block vectors, one per lane (equal
    // lengths within a batch, so each vector rides its own batch of equal
    // inputs with one distinct lane).
    let cases: [(&[u8], &str); 3] = [
        (
            b"abc",
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad",
        ),
        (
            b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1",
        ),
        (
            b"",
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855",
        ),
    ];
    for (message, expected) in cases {
        let x4 = Sha256x4::digest([message; 4]);
        let x8 = Sha256x8::digest([message; 8]);
        for (lane, digest) in x4.iter().enumerate() {
            assert_eq!(hex(digest), expected, "x4 lane {lane}");
        }
        for (lane, digest) in x8.iter().enumerate() {
            assert_eq!(hex(digest), expected, "x8 lane {lane}");
        }
    }
}

#[test]
fn blake2s_lanes_reproduce_rfc7693_and_reference_vectors() {
    let x8 = Blake2sx8::digest([&b"abc"[..]; 8]);
    for (lane, digest) in x8.iter().enumerate() {
        assert_eq!(
            hex(digest),
            "508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982",
            "lane {lane}"
        );
    }
    let empty = Blake2sx4::digest([&b""[..]; 4]);
    for (lane, digest) in empty.iter().enumerate() {
        assert_eq!(
            hex(digest),
            "69217a3079908094e11121d042354a7c1f55b6482ca1a51e1b250dfd1ed0eef9",
            "lane {lane}"
        );
    }
}

#[test]
fn keyed_lanes_reproduce_mac_known_answers() {
    // RFC 4231 case 1 (HMAC-SHA256) and the BLAKE2 reference keyed vector,
    // each replicated across all lanes of a MultiKeyedMac.
    let hmac_key = MacAlgorithm::HmacSha256.with_key(&[0x0b; 20]);
    let multi = MultiKeyedMac::<4>::new([&hmac_key; 4]);
    for tag in multi.mac([&b"Hi There"[..]; 4]) {
        assert_eq!(
            hex(tag.as_bytes()),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    let blake_key: Vec<u8> = (0..32u8).collect();
    let keyed = MacAlgorithm::KeyedBlake2s.with_key(&blake_key);
    let multi = MultiKeyedMac::<8>::new([&keyed; 8]);
    for tag in multi.mac([&[0x00u8][..]; 8]) {
        assert_eq!(
            hex(tag.as_bytes()),
            "40d15fee7c328830166ac3f918650f807e7e01e177258cdc0a39b11f598066f1"
        );
    }
}

// ---------------------------------------------------------------------------
// Ragged batches: the fleet partitions a cohort into 8-lane groups, 4-lane
// groups and scalar leftovers. All partitions must agree bit-for-bit.
// ---------------------------------------------------------------------------

/// Hashes `messages` the way a lane-batched shard would: 8-wide groups
/// first, then 4-wide, then scalar stragglers.
fn staged_digests(messages: &[Vec<u8>]) -> Vec<[u8; 32]> {
    let mut out = Vec::with_capacity(messages.len());
    let mut rest = messages;
    while rest.len() >= 8 {
        let (group, tail) = rest.split_at(8);
        out.extend(Sha256x8::digest(std::array::from_fn(|i| &group[i][..])));
        rest = tail;
    }
    while rest.len() >= 4 {
        let (group, tail) = rest.split_at(4);
        out.extend(Sha256x4::digest(std::array::from_fn(|i| &group[i][..])));
        rest = tail;
    }
    for message in rest {
        out.push(Sha256::digest(message));
    }
    out
}

#[test]
fn ragged_batch_partitions_match_scalar() {
    // Every cohort size from 0 to 21 covers all 8/4/scalar combinations.
    for count in 0..22usize {
        let messages: Vec<Vec<u8>> = (0..count).map(|i| vec![i as u8 ^ 0x7e; 333]).collect();
        let staged = staged_digests(&messages);
        for (lane, message) in messages.iter().enumerate() {
            assert_eq!(
                staged[lane],
                Sha256::digest(message),
                "count {count} lane {lane}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Property tests: random keys/messages, every algorithm, both widths.
// ---------------------------------------------------------------------------

fn keyed_lanes(alg: MacAlgorithm, count: usize, keys: &[Vec<u8>]) -> Vec<KeyedMac> {
    (0..count).map(|i| alg.with_key(&keys[i])).collect()
}

proptest! {
    /// Random equal-length messages: every SHA-256 lane equals the scalar
    /// digest, at width 4 and 8, one-shot and split absorption.
    #[test]
    fn sha256_lanes_equal_scalar(
        len in 0usize..1500,
        seeds in proptest::collection::vec(any::<u8>(), 8),
        split in 0usize..4096,
    ) {
        let messages: Vec<Vec<u8>> = seeds
            .iter()
            .map(|&seed| (0..len).map(|i| (i as u8).wrapping_mul(seed).wrapping_add(seed)).collect())
            .collect();
        let at = split % (len + 1);

        let x8 = Sha256x8::digest(std::array::from_fn(|i| &messages[i][..]));
        let mut incremental = Sha256x4::new();
        incremental.update(std::array::from_fn(|i| &messages[i][..at]));
        incremental.update(std::array::from_fn(|i| &messages[i][at..]));
        let x4 = incremental.finalize();
        for lane in 0..8 {
            let scalar = Sha256::digest(&messages[lane]);
            prop_assert_eq!(x8[lane], scalar, "x8 lane {}", lane);
            if lane < 4 {
                prop_assert_eq!(x4[lane], scalar, "x4 lane {}", lane);
            }
        }
    }

    /// Random equal-length messages: every BLAKE2s lane equals the scalar
    /// digest, including split absorption across block boundaries.
    #[test]
    fn blake2s_lanes_equal_scalar(
        len in 0usize..1500,
        seeds in proptest::collection::vec(any::<u8>(), 8),
        split in 0usize..4096,
    ) {
        let messages: Vec<Vec<u8>> = seeds
            .iter()
            .map(|&seed| (0..len).map(|i| (i as u8) ^ seed).collect())
            .collect();
        let at = split % (len + 1);

        let x8 = Blake2sx8::digest(std::array::from_fn(|i| &messages[i][..]));
        let mut incremental = Blake2sx4::new();
        incremental.update(std::array::from_fn(|i| &messages[i][..at]));
        incremental.update(std::array::from_fn(|i| &messages[i][at..]));
        let x4 = incremental.finalize();
        for lane in 0..8 {
            let scalar = Blake2s::digest(&messages[lane]);
            prop_assert_eq!(x8[lane], scalar, "x8 lane {}", lane);
            if lane < 4 {
                prop_assert_eq!(x4[lane], scalar, "x4 lane {}", lane);
            }
        }
    }

    /// Random per-lane keys and messages: every MultiKeyedMac lane equals
    /// the scalar KeyedMac tag, for all three algorithms and both widths.
    #[test]
    fn multi_keyed_mac_lanes_equal_scalar(
        keys in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..64), 8),
        len in 0usize..600,
        fill in any::<u8>(),
    ) {
        let messages: Vec<Vec<u8>> = (0..8u8)
            .map(|lane| (0..len).map(|i| (i as u8).wrapping_add(lane) ^ fill).collect())
            .collect();
        for alg in MacAlgorithm::ALL {
            let lanes = keyed_lanes(alg, 8, &keys);
            let x8 = MultiKeyedMac::<8>::new(std::array::from_fn(|i| &lanes[i]));
            let tags8 = x8.mac(std::array::from_fn(|i| &messages[i][..]));
            let x4 = MultiKeyedMac::<4>::new(std::array::from_fn(|i| &lanes[i]));
            let tags4 = x4.mac(std::array::from_fn(|i| &messages[i][..]));
            for lane in 0..8 {
                let scalar: MacTag = lanes[lane].mac(&messages[lane]);
                prop_assert_eq!(&tags8[lane], &scalar, "{} x8 lane {}", alg, lane);
                if lane < 4 {
                    prop_assert_eq!(&tags4[lane], &scalar, "{} x4 lane {}", alg, lane);
                }
            }
        }
    }

    /// Reusing a MultiKeyedMac across batches is stateless, exactly like
    /// the scalar KeyedMac.
    #[test]
    fn multi_keyed_mac_reuse_is_stateless(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        first in proptest::collection::vec(any::<u8>(), 0..256),
        second in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        for alg in MacAlgorithm::ALL {
            let keyed = alg.with_key(&key);
            let multi = MultiKeyedMac::<4>::new([&keyed; 4]);
            let before = multi.mac([&first[..]; 4]);
            let _ = multi.mac([&second[..]; 4]);
            let after = multi.mac([&first[..]; 4]);
            for lane in 0..4 {
                prop_assert_eq!(&before[lane], &after[lane], "{} lane {}", alg, lane);
                prop_assert_eq!(&before[lane], &keyed.mac(&first), "{} lane {}", alg, lane);
            }
        }
    }
}
