//! Equivalence suite: the precomputed [`KeyedMac`] path must produce
//! byte-identical tags to the one-shot [`MacAlgorithm::mac`] path for every
//! algorithm, on known-answer vectors and on random inputs.
//!
//! The precomputed path is what provers and verifiers actually run; the
//! one-shot path is the reference construction checked against the RFC
//! vectors in the unit tests. This suite pins the two together so a midstate
//! bug cannot silently diverge from the spec.

use erasmus_crypto::{HmacKey, KeyedMac, MacAlgorithm, MacTag, Sha1, Sha256};
use proptest::prelude::*;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Known-answer vectors: (algorithm, key, message, expected tag hex).
///
/// HMAC-SHA256 cases are from RFC 4231, HMAC-SHA1 cases from RFC 2202, and
/// the keyed-BLAKE2s cases from the official BLAKE2 reference test suite.
fn known_answers() -> Vec<(MacAlgorithm, Vec<u8>, Vec<u8>, &'static str)> {
    let blake_key: Vec<u8> = (0..32u8).collect();
    vec![
        (
            MacAlgorithm::HmacSha256,
            vec![0x0b; 20],
            b"Hi There".to_vec(),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7",
        ),
        (
            MacAlgorithm::HmacSha256,
            b"Jefe".to_vec(),
            b"what do ya want for nothing?".to_vec(),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843",
        ),
        (
            MacAlgorithm::HmacSha256,
            vec![0xaa; 131],
            b"Test Using Larger Than Block-Size Key - Hash Key First".to_vec(),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54",
        ),
        (
            MacAlgorithm::HmacSha1,
            vec![0x0b; 20],
            b"Hi There".to_vec(),
            "b617318655057264e28bc0b6fb378c8ef146be00",
        ),
        (
            MacAlgorithm::HmacSha1,
            b"Jefe".to_vec(),
            b"what do ya want for nothing?".to_vec(),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79",
        ),
        (
            MacAlgorithm::KeyedBlake2s,
            blake_key.clone(),
            Vec::new(),
            "48a8997da407876b3d79c0d92325ad3b89cbb754d86ab71aee047ad345fd2c49",
        ),
        (
            MacAlgorithm::KeyedBlake2s,
            blake_key.clone(),
            vec![0x00],
            "40d15fee7c328830166ac3f918650f807e7e01e177258cdc0a39b11f598066f1",
        ),
        (
            MacAlgorithm::KeyedBlake2s,
            blake_key,
            vec![0x00, 0x01],
            "6bb71300644cd3991b26ccd4d274acd1adeab8b1d7914546c1198bbe9fc9d803",
        ),
    ]
}

#[test]
fn keyed_path_reproduces_every_known_answer() {
    for (alg, key, message, expected) in known_answers() {
        let keyed = alg.with_key(&key);
        let tag = keyed.mac(&message);
        assert_eq!(hex(tag.as_bytes()), expected, "{alg} KAT via KeyedMac");
        assert_eq!(tag, alg.mac(&key, &message), "{alg} KAT one-shot match");
        assert!(keyed.verify(&message, &tag), "{alg} KAT verifies");
        assert!(
            keyed.verify(&message, &MacTag::new(tag.as_bytes())),
            "{alg} KAT verifies through a reconstructed tag"
        );
    }
}

#[test]
fn hmac_key_incremental_absorption_matches_oneshot_at_block_boundaries() {
    // Message lengths straddling the 64-byte block boundary exercise the
    // midstate buffering logic in both digests.
    let key = [0x7eu8; 32];
    let sha256 = HmacKey::<Sha256>::new(&key);
    let sha1 = HmacKey::<Sha1>::new(&key);
    for len in [0usize, 1, 23, 55, 56, 63, 64, 65, 119, 120, 127, 128, 129] {
        let message: Vec<u8> = (0..len as u32).map(|i| (i * 31 % 256) as u8).collect();
        assert_eq!(
            sha256.mac(&message),
            erasmus_crypto::HmacSha256::mac(&key, &message),
            "sha256 length {len}"
        );
        assert_eq!(
            sha1.mac(&message),
            erasmus_crypto::HmacSha1::mac(&key, &message),
            "sha1 length {len}"
        );
        // Byte-at-a-time absorption through the midstate.
        let mut incremental = sha256.begin();
        for byte in &message {
            incremental.update(std::slice::from_ref(byte));
        }
        assert_eq!(
            incremental.finalize(),
            sha256.mac(&message),
            "sha256 incremental length {len}"
        );
    }
}

#[test]
fn cloned_keyed_states_are_independent() {
    let keyed = MacAlgorithm::KeyedBlake2s.with_key(b"device key");
    let clone = keyed.clone();
    let before = keyed.mac(b"first");
    // Using the clone must not disturb the original state.
    let _ = clone.mac(b"interleaved message of a different length");
    assert_eq!(keyed.mac(b"first"), before);
    assert_eq!(clone.mac(b"first"), before);
}

proptest! {
    /// Random keys and messages: precomputed == one-shot, always, for all
    /// three algorithms.
    #[test]
    fn precomputed_equals_oneshot(
        key in proptest::collection::vec(any::<u8>(), 0..128),
        message in proptest::collection::vec(any::<u8>(), 0..2048),
    ) {
        for alg in MacAlgorithm::ALL {
            let keyed = alg.with_key(&key);
            let precomputed = keyed.mac(&message);
            let oneshot = alg.mac(&key, &message);
            prop_assert_eq!(&precomputed, &oneshot, "{} diverged", alg);
            prop_assert!(keyed.verify(&message, &oneshot));
            prop_assert!(alg.verify(&key, &message, &precomputed));
        }
    }

    /// A keyed state survives arbitrary reuse: the Nth tag equals the first.
    #[test]
    fn keyed_state_reuse_is_stateless(
        key in proptest::collection::vec(any::<u8>(), 1..64),
        messages in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..256), 1..8),
    ) {
        for alg in MacAlgorithm::ALL {
            let keyed: KeyedMac = alg.with_key(&key);
            let expected: Vec<MacTag> = messages.iter().map(|m| alg.mac(&key, m)).collect();
            // Interleave in both directions to shake out shared-state bugs.
            for (message, tag) in messages.iter().zip(&expected) {
                prop_assert_eq!(&keyed.mac(message), tag);
            }
            for (message, tag) in messages.iter().zip(&expected).rev() {
                prop_assert_eq!(&keyed.mac(message), tag);
            }
        }
    }

    /// Tags produced by the precomputed path are rejected by a schedule for
    /// any other key (no key-schedule aliasing).
    #[test]
    fn different_keys_never_alias(
        key_a in proptest::collection::vec(any::<u8>(), 1..64),
        key_b in proptest::collection::vec(any::<u8>(), 1..64),
        message in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        prop_assume!(key_a != key_b);
        for alg in MacAlgorithm::ALL {
            let tag = alg.with_key(&key_a).mac(&message);
            prop_assert!(!alg.with_key(&key_b).verify(&message, &tag), "{} aliased", alg);
        }
    }
}
