//! HMAC (RFC 2104) over any [`Digest`].
//!
//! HMAC-SHA256 is the reference MAC in both the SMART+ and HYDRA
//! implementations of the paper (Table 1, Figures 6 and 8); HMAC-SHA1 is
//! reproduced only for the size comparison.
//!
//! The implementation is midstate-based: keying absorbs the ipad and opad
//! blocks into two digest states exactly once, and every subsequent MAC
//! clones those cheap fixed-size states instead of re-deriving the key
//! schedule. [`HmacKey`] exposes the precomputed form directly, which is how
//! real SMART+/HYDRA-style deployments hold the device key — derived once at
//! provisioning, reused for every self-measurement.

use crate::ct::constant_time_eq;
use crate::digest::{Digest, MAX_BLOCK_SIZE};
use crate::sha1::Sha1;
use crate::sha256::Sha256;

/// Precomputed HMAC key schedule: the inner (ipad) and outer (opad)
/// midstates, each one compression ahead.
///
/// Cloning an `HmacKey` or starting a MAC from it copies two fixed-size
/// digest states — no allocation, no re-hashing of the key.
///
/// # Example
///
/// ```
/// use erasmus_crypto::{HmacKey, HmacSha256, Sha256};
///
/// let schedule = HmacKey::<Sha256>::new(b"device key");
/// let precomputed = schedule.mac(b"message");
/// assert_eq!(precomputed, HmacSha256::mac(b"device key", b"message"));
/// ```
#[derive(Clone)]
pub struct HmacKey<D: Digest> {
    inner: D,
    outer: D,
}

impl<D: Digest> HmacKey<D> {
    /// Derives the ipad/opad midstates from `key`.
    ///
    /// Keys longer than the digest block size are first hashed, exactly as
    /// RFC 2104 prescribes; shorter keys are zero-padded.
    pub fn new(key: &[u8]) -> Self {
        debug_assert!(D::BLOCK_SIZE <= MAX_BLOCK_SIZE);
        let mut key_block = [0u8; MAX_BLOCK_SIZE];
        if key.len() > D::BLOCK_SIZE {
            let hashed = D::digest(key);
            key_block[..hashed.as_ref().len()].copy_from_slice(hashed.as_ref());
        } else {
            key_block[..key.len()].copy_from_slice(key);
        }

        let mut pad = [0u8; MAX_BLOCK_SIZE];
        for (p, k) in pad.iter_mut().zip(key_block.iter()) {
            *p = k ^ 0x36;
        }
        let mut inner = D::new();
        inner.update(&pad[..D::BLOCK_SIZE]);

        for (p, k) in pad.iter_mut().zip(key_block.iter()) {
            *p = k ^ 0x5c;
        }
        let mut outer = D::new();
        outer.update(&pad[..D::BLOCK_SIZE]);

        Self { inner, outer }
    }

    /// Starts an incremental MAC computation from the precomputed midstates.
    pub fn begin(&self) -> Hmac<D> {
        Hmac {
            inner: self.inner.clone(),
            outer: self.outer.clone(),
        }
    }

    /// Computes the tag of `message` in one call, reusing the midstates.
    pub fn mac(&self, message: &[u8]) -> D::Output {
        let mut hmac = self.begin();
        hmac.update(message);
        hmac.finalize()
    }

    /// Verifies `tag` against the MAC of `message` in constant time.
    pub fn verify(&self, message: &[u8], tag: &[u8]) -> bool {
        constant_time_eq(self.mac(message).as_ref(), tag)
    }

    /// The `(inner, outer)` midstates, for transposition into lane-major
    /// form by the multi-lane MAC.
    pub(crate) fn lane_midstates(&self) -> (&D, &D) {
        (&self.inner, &self.outer)
    }
}

impl<D: Digest> std::fmt::Debug for HmacKey<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The midstates are key material; never print them.
        f.write_str("HmacKey(..redacted..)")
    }
}

/// HMAC keyed with an arbitrary-length key over digest `D`.
///
/// # Example
///
/// ```
/// use erasmus_crypto::{Hmac, Sha256};
///
/// let mut mac = Hmac::<Sha256>::new(b"key");
/// mac.update(b"The quick brown fox jumps over the lazy dog");
/// let tag = mac.finalize();
/// assert_eq!(tag.len(), 32);
/// assert!(Hmac::<Sha256>::verify(b"key", b"The quick brown fox jumps over the lazy dog", &tag));
/// ```
#[derive(Clone)]
pub struct Hmac<D: Digest> {
    inner: D,
    /// Outer state with the opad block already absorbed.
    outer: D,
}

impl<D: Digest> std::fmt::Debug for Hmac<D> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Both midstates are key-equivalent material; never print them.
        f.write_str("Hmac(..redacted..)")
    }
}

/// HMAC-SHA1 alias (Table 1 comparison only).
pub type HmacSha1 = Hmac<Sha1>;
/// HMAC-SHA256 alias (the paper's reference MAC).
pub type HmacSha256 = Hmac<Sha256>;

impl<D: Digest> Hmac<D> {
    /// Creates an HMAC instance keyed with `key`.
    pub fn new(key: &[u8]) -> Self {
        HmacKey::new(key).begin()
    }

    /// Absorbs message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finishes the computation and returns the authentication tag.
    pub fn finalize(self) -> D::Output {
        let inner_digest = self.inner.finalize();
        let mut outer = self.outer;
        outer.update(inner_digest.as_ref());
        outer.finalize()
    }

    /// One-shot MAC computation.
    pub fn mac(key: &[u8], message: &[u8]) -> D::Output {
        let mut hmac = Self::new(key);
        hmac.update(message);
        hmac.finalize()
    }

    /// Verifies `tag` against the MAC of `message` under `key` in constant
    /// time.
    pub fn verify(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
        constant_time_eq(Self::mac(key, message).as_ref(), tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 4231 test vectors for HMAC-SHA256.
    #[test]
    fn rfc4231_case_1() {
        let key = [0x0bu8; 20];
        let tag = HmacSha256::mac(&key, b"Hi There");
        assert_eq!(
            hex(&tag),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    #[test]
    fn rfc4231_case_2() {
        let tag = HmacSha256::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&tag),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    #[test]
    fn rfc4231_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = HmacSha256::mac(&key, &data);
        assert_eq!(
            hex(&tag),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    #[test]
    fn rfc4231_case_4() {
        let key: Vec<u8> = (1..=25u8).collect();
        let data = [0xcdu8; 50];
        let tag = HmacSha256::mac(&key, &data);
        assert_eq!(
            hex(&tag),
            "82558a389a443c0ea4cc819899f2083a85f0faa3e578f8077a2e3ff46729665b"
        );
    }

    #[test]
    fn rfc4231_case_6_long_key() {
        let key = [0xaau8; 131];
        let tag = HmacSha256::mac(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&tag),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    #[test]
    fn rfc4231_case_7_long_key_and_data() {
        let key = [0xaau8; 131];
        let data = b"This is a test using a larger than block-size key and a larger than \
                     block-size data. The key needs to be hashed before being used by the \
                     HMAC algorithm.";
        let tag = HmacSha256::mac(&key, data);
        assert_eq!(
            hex(&tag),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2"
        );
    }

    // RFC 2202 test vectors for HMAC-SHA1.
    #[test]
    fn rfc2202_sha1_case_1() {
        let key = [0x0bu8; 20];
        let tag = HmacSha1::mac(&key, b"Hi There");
        assert_eq!(hex(&tag), "b617318655057264e28bc0b6fb378c8ef146be00");
    }

    #[test]
    fn rfc2202_sha1_case_2() {
        let tag = HmacSha1::mac(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(hex(&tag), "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
    }

    #[test]
    fn rfc2202_sha1_case_3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let tag = HmacSha1::mac(&key, &data);
        assert_eq!(hex(&tag), "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
    }

    #[test]
    fn verify_accepts_correct_tag_and_rejects_wrong() {
        let tag = HmacSha256::mac(b"k", b"m");
        assert!(HmacSha256::verify(b"k", b"m", &tag));
        assert!(!HmacSha256::verify(b"k", b"m2", &tag));
        assert!(!HmacSha256::verify(b"k2", b"m", &tag));
        let mut bad = tag;
        bad[0] ^= 1;
        assert!(!HmacSha256::verify(b"k", b"m", &bad));
        assert!(!HmacSha256::verify(b"k", b"m", &tag[..31]));
    }

    #[test]
    fn incremental_matches_oneshot() {
        let mut mac = HmacSha256::new(b"incremental key");
        mac.update(b"part one / ");
        mac.update(b"part two");
        assert_eq!(
            mac.finalize(),
            HmacSha256::mac(b"incremental key", b"part one / part two")
        );
    }

    #[test]
    fn precomputed_key_matches_oneshot_across_key_lengths() {
        for key_len in [0usize, 1, 31, 32, 63, 64, 65, 131] {
            let key: Vec<u8> = (0..key_len as u32).map(|i| (i % 251) as u8).collect();
            let schedule = HmacKey::<Sha256>::new(&key);
            for message in [&b""[..], b"m", &[0xabu8; 200]] {
                assert_eq!(
                    schedule.mac(message),
                    HmacSha256::mac(&key, message),
                    "key length {key_len}"
                );
                assert!(schedule.verify(message, &HmacSha256::mac(&key, message)));
            }
        }
    }

    #[test]
    fn precomputed_key_is_reusable_and_incremental() {
        let schedule = HmacKey::<Sha256>::new(b"reused key");
        let first = schedule.mac(b"alpha");
        let mut incremental = schedule.begin();
        incremental.update(b"al");
        incremental.update(b"pha");
        assert_eq!(incremental.finalize(), first);
        // The schedule is unchanged by use.
        assert_eq!(schedule.mac(b"alpha"), first);
    }

    #[test]
    fn hmac_key_debug_is_redacted() {
        let schedule = HmacKey::<Sha256>::new(&[0xffu8; 32]);
        assert_eq!(format!("{schedule:?}"), "HmacKey(..redacted..)");
        let in_flight = HmacSha256::new(&[0xffu8; 32]);
        assert_eq!(format!("{in_flight:?}"), "Hmac(..redacted..)");
    }

    #[test]
    fn empty_key_and_message_are_valid_inputs() {
        let tag = HmacSha256::mac(b"", b"");
        assert_eq!(tag.len(), 32);
        assert!(HmacSha256::verify(b"", b"", &tag));
    }
}
