//! BLAKE2s (RFC 7693) with native keyed mode.
//!
//! The paper evaluates "keyed BLAKE2S" as its third MAC construction
//! (Table 1, Figures 6 and 8). BLAKE2s is the 32-bit-word flavour of BLAKE2,
//! a good match for the MSP430-class devices the SMART+ implementation
//! targets; its keyed mode is a MAC by construction, so no HMAC wrapper is
//! needed.

use crate::ct::constant_time_eq;
use crate::digest::Digest;

/// BLAKE2s initialization vector (identical to the SHA-256 IV).
pub(crate) const IV: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Message word schedule for the 10 rounds.
pub(crate) const SIGMA: [[usize; 16]; 10] = [
    [0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15],
    [14, 10, 4, 8, 9, 15, 13, 6, 1, 12, 0, 2, 11, 7, 5, 3],
    [11, 8, 12, 0, 5, 2, 15, 13, 10, 14, 3, 6, 7, 1, 9, 4],
    [7, 9, 3, 1, 13, 12, 11, 14, 2, 6, 5, 10, 4, 0, 15, 8],
    [9, 0, 5, 7, 2, 4, 10, 15, 14, 1, 11, 12, 6, 8, 3, 13],
    [2, 12, 6, 10, 0, 11, 8, 3, 4, 13, 7, 5, 15, 14, 1, 9],
    [12, 5, 1, 15, 14, 13, 4, 10, 0, 7, 6, 3, 9, 2, 8, 11],
    [13, 11, 7, 14, 12, 1, 3, 9, 5, 0, 15, 4, 8, 6, 2, 10],
    [6, 15, 14, 9, 11, 3, 0, 8, 12, 2, 13, 7, 1, 4, 10, 5],
    [10, 2, 8, 4, 7, 6, 1, 5, 15, 11, 9, 14, 3, 12, 13, 0],
];

const BLOCK_BYTES: usize = 64;
const MAX_OUT_BYTES: usize = 32;
const MAX_KEY_BYTES: usize = 32;

/// Incremental BLAKE2s hasher with optional key.
///
/// # Example
///
/// ```
/// use erasmus_crypto::{Blake2s, Digest};
///
/// // Unkeyed 32-byte digest.
/// let digest = Blake2s::digest(b"abc");
/// assert_eq!(digest.len(), 32);
///
/// // Keyed MAC mode, as used by the paper's "keyed BLAKE2S" measurements.
/// let mut mac = Blake2s::new_keyed(b"device key", 32);
/// mac.update(b"memory contents");
/// let tag = mac.finalize();
/// assert_eq!(tag.len(), 32);
/// ```
#[derive(Debug, Clone)]
pub struct Blake2s {
    h: [u32; 8],
    /// Low and high words of the byte counter.
    t: [u32; 2],
    buffer: [u8; BLOCK_BYTES],
    buffer_len: usize,
    out_len: usize,
}

impl Blake2s {
    /// Creates an unkeyed BLAKE2s-256 hasher (32-byte output).
    pub fn new() -> Self {
        Self::with_params(&[], MAX_OUT_BYTES)
    }

    /// Creates a keyed BLAKE2s hasher producing `out_len` bytes.
    ///
    /// This is the paper's "keyed BLAKE2S" MAC. Keys longer than 32 bytes are
    /// truncated to 32 bytes (the RFC 7693 maximum); the rest of the
    /// workspace always passes 32-byte device keys.
    ///
    /// # Panics
    ///
    /// Panics if `out_len` is zero or greater than 32.
    pub fn new_keyed(key: &[u8], out_len: usize) -> Self {
        Self::with_params(key, out_len)
    }

    fn with_params(key: &[u8], out_len: usize) -> Self {
        assert!(
            (1..=MAX_OUT_BYTES).contains(&out_len),
            "BLAKE2s output length must be in 1..=32, got {out_len}"
        );
        let key = if key.len() > MAX_KEY_BYTES {
            &key[..MAX_KEY_BYTES]
        } else {
            key
        };

        let mut h = IV;
        // Parameter block word 0: digest length, key length, fanout=1, depth=1.
        h[0] ^= 0x0101_0000 ^ ((key.len() as u32) << 8) ^ out_len as u32;

        let mut state = Self {
            h,
            t: [0, 0],
            buffer: [0u8; BLOCK_BYTES],
            buffer_len: 0,
            out_len,
        };

        if !key.is_empty() {
            // Keyed mode: the key is padded to a full block and absorbed first.
            let mut key_block = [0u8; BLOCK_BYTES];
            key_block[..key.len()].copy_from_slice(key);
            state.buffer = key_block;
            state.buffer_len = BLOCK_BYTES;
        }
        state
    }

    /// One-shot keyed MAC.
    pub fn keyed_mac(key: &[u8], message: &[u8]) -> [u8; 32] {
        let mut mac = Self::new_keyed(key, MAX_OUT_BYTES);
        mac.update(message);
        mac.finalize()
    }

    /// Compresses all pending input and returns the full 32-byte state.
    fn finalize_words(mut self) -> [u8; 32] {
        self.increment_counter(self.buffer_len as u32);
        let mut block = [0u8; BLOCK_BYTES];
        block[..self.buffer_len].copy_from_slice(&self.buffer[..self.buffer_len]);
        self.compress(&block, true);

        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.h) {
            chunk.copy_from_slice(&word.to_le_bytes());
        }
        out
    }

    /// Finishes the hash and writes the configured `out_len` digest bytes
    /// into `out`, returning how many were written.
    ///
    /// This is the finalizer for truncated-output instances; full 32-byte
    /// instances can use [`Digest::finalize`] and stay on the stack.
    ///
    /// # Panics
    ///
    /// Panics if `out` is shorter than the configured output length.
    pub fn finalize_into(self, out: &mut [u8]) -> usize {
        let out_len = self.out_len;
        assert!(
            out.len() >= out_len,
            "output buffer of {} bytes cannot hold a {out_len}-byte digest",
            out.len()
        );
        let words = self.finalize_words();
        out[..out_len].copy_from_slice(&words[..out_len]);
        out_len
    }

    /// Verifies a keyed-BLAKE2s tag in constant time.
    pub fn verify_keyed(key: &[u8], message: &[u8], tag: &[u8]) -> bool {
        constant_time_eq(&Self::keyed_mac(key, message), tag)
    }

    /// Lane view used by the multi-lane cores to transpose keyed states:
    /// `(chain value, counter, buffer, buffered bytes, output length)`.
    pub(crate) fn lane_parts(&self) -> ([u32; 8], [u32; 2], &[u8; BLOCK_BYTES], usize, usize) {
        (self.h, self.t, &self.buffer, self.buffer_len, self.out_len)
    }

    fn increment_counter(&mut self, bytes: u32) {
        let (lo, carry) = self.t[0].overflowing_add(bytes);
        self.t[0] = lo;
        if carry {
            self.t[1] = self.t[1].wrapping_add(1);
        }
    }

    fn compress(&mut self, block: &[u8; BLOCK_BYTES], last: bool) {
        let mut m = [0u32; 16];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            m[i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }

        let mut v = [0u32; 16];
        v[..8].copy_from_slice(&self.h);
        v[8..].copy_from_slice(&IV);
        v[12] ^= self.t[0];
        v[13] ^= self.t[1];
        if last {
            v[14] = !v[14];
        }

        #[inline(always)]
        fn g(v: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize, x: u32, y: u32) {
            v[a] = v[a].wrapping_add(v[b]).wrapping_add(x);
            v[d] = (v[d] ^ v[a]).rotate_right(16);
            v[c] = v[c].wrapping_add(v[d]);
            v[b] = (v[b] ^ v[c]).rotate_right(12);
            v[a] = v[a].wrapping_add(v[b]).wrapping_add(y);
            v[d] = (v[d] ^ v[a]).rotate_right(8);
            v[c] = v[c].wrapping_add(v[d]);
            v[b] = (v[b] ^ v[c]).rotate_right(7);
        }

        for s in &SIGMA {
            g(&mut v, 0, 4, 8, 12, m[s[0]], m[s[1]]);
            g(&mut v, 1, 5, 9, 13, m[s[2]], m[s[3]]);
            g(&mut v, 2, 6, 10, 14, m[s[4]], m[s[5]]);
            g(&mut v, 3, 7, 11, 15, m[s[6]], m[s[7]]);
            g(&mut v, 0, 5, 10, 15, m[s[8]], m[s[9]]);
            g(&mut v, 1, 6, 11, 12, m[s[10]], m[s[11]]);
            g(&mut v, 2, 7, 8, 13, m[s[12]], m[s[13]]);
            g(&mut v, 3, 4, 9, 14, m[s[14]], m[s[15]]);
        }

        for i in 0..8 {
            self.h[i] ^= v[i] ^ v[i + 8];
        }
    }
}

impl Default for Blake2s {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest for Blake2s {
    const OUTPUT_SIZE: usize = MAX_OUT_BYTES;
    const BLOCK_SIZE: usize = BLOCK_BYTES;

    type Output = [u8; 32];

    fn new() -> Self {
        Blake2s::new()
    }

    fn update(&mut self, mut data: &[u8]) {
        // BLAKE2 buffers a full block and only compresses it once more data
        // arrives, because the final block must be flagged as "last".
        while !data.is_empty() {
            if self.buffer_len == BLOCK_BYTES {
                self.increment_counter(BLOCK_BYTES as u32);
                let block = self.buffer;
                self.compress(&block, false);
                self.buffer_len = 0;
            }
            let take = (BLOCK_BYTES - self.buffer_len).min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
        }
    }

    fn finalize(self) -> [u8; 32] {
        assert_eq!(
            self.out_len, MAX_OUT_BYTES,
            "use finalize_into for truncated-output instances"
        );
        self.finalize_words()
    }
}

/// Convenience alias emphasising the MAC role of keyed BLAKE2s.
///
/// # Example
///
/// ```
/// use erasmus_crypto::Blake2sMac;
///
/// let tag = Blake2sMac::keyed_mac(b"key", b"message");
/// assert!(Blake2sMac::verify_keyed(b"key", b"message", &tag));
/// ```
pub type Blake2sMac = Blake2s;

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    // RFC 7693 Appendix B test vector.
    #[test]
    fn rfc7693_abc() {
        assert_eq!(
            hex(&Blake2s::digest(b"abc")),
            "508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982"
        );
    }

    // Test vectors from the official BLAKE2 reference test suite
    // (https://github.com/BLAKE2/BLAKE2, blake2s test vectors).
    #[test]
    fn reference_empty_unkeyed() {
        assert_eq!(
            hex(&Blake2s::digest(b"")),
            "69217a3079908094e11121d042354a7c1f55b6482ca1a51e1b250dfd1ed0eef9"
        );
    }

    #[test]
    fn reference_keyed_empty_message() {
        // Key = 00 01 02 ... 1f, empty message.
        let key: Vec<u8> = (0..32u8).collect();
        let mut mac = Blake2s::new_keyed(&key, 32);
        mac.update(b"");
        assert_eq!(
            hex(&mac.finalize()),
            "48a8997da407876b3d79c0d92325ad3b89cbb754d86ab71aee047ad345fd2c49"
        );
    }

    #[test]
    fn reference_keyed_one_byte_message() {
        // Key = 00..1f, message = 00.
        let key: Vec<u8> = (0..32u8).collect();
        let mut mac = Blake2s::new_keyed(&key, 32);
        mac.update(&[0x00]);
        assert_eq!(
            hex(&mac.finalize()),
            "40d15fee7c328830166ac3f918650f807e7e01e177258cdc0a39b11f598066f1"
        );
    }

    #[test]
    fn reference_keyed_two_byte_message() {
        // Key = 00..1f, message = 00 01.
        let key: Vec<u8> = (0..32u8).collect();
        let mut mac = Blake2s::new_keyed(&key, 32);
        mac.update(&[0x00, 0x01]);
        assert_eq!(
            hex(&mac.finalize()),
            "6bb71300644cd3991b26ccd4d274acd1adeab8b1d7914546c1198bbe9fc9d803"
        );
    }

    #[test]
    fn block_boundary_lengths_are_consistent() {
        // Exercise the exact-block and block-plus-one paths: one-shot MACs
        // must match byte-at-a-time absorption at every boundary length.
        let key: Vec<u8> = (0..32u8).collect();
        for len in [63usize, 64, 65, 127, 128, 129] {
            let message: Vec<u8> = (0..len as u32).map(|i| (i % 256) as u8).collect();
            let oneshot = Blake2s::keyed_mac(&key, &message);
            let mut mac = Blake2s::new_keyed(&key, 32);
            for byte in &message {
                mac.update(std::slice::from_ref(byte));
            }
            assert_eq!(mac.finalize(), oneshot, "length {len}");
        }
    }

    #[test]
    fn incremental_matches_oneshot_keyed() {
        let key: Vec<u8> = (0..32u8).collect();
        let message: Vec<u8> = (0..=254u8).collect();
        let oneshot = Blake2s::keyed_mac(&key, &message);
        for split in [0usize, 1, 32, 63, 64, 65, 128, 254, 255] {
            let mut mac = Blake2s::new_keyed(&key, 32);
            mac.update(&message[..split]);
            mac.update(&message[split..]);
            assert_eq!(mac.finalize(), oneshot, "split at {split}");
        }
    }

    #[test]
    fn truncated_output_lengths() {
        for out_len in [1usize, 16, 20, 31, 32] {
            let mut mac = Blake2s::new_keyed(b"key", out_len);
            mac.update(b"msg");
            let mut out = [0u8; 32];
            assert_eq!(mac.finalize_into(&mut out), out_len);
        }
    }

    #[test]
    fn finalize_into_matches_finalize_for_full_output() {
        let mut a = Blake2s::new_keyed(b"key", 32);
        let mut b = Blake2s::new_keyed(b"key", 32);
        a.update(b"msg");
        b.update(b"msg");
        let mut out = [0u8; 32];
        assert_eq!(a.finalize_into(&mut out), 32);
        assert_eq!(out, b.finalize());
    }

    #[test]
    fn truncated_digests_are_not_prefixes_of_the_full_digest() {
        // The output length is part of the BLAKE2 parameter block, so a
        // 16-byte digest differs from the first 16 bytes of the 32-byte one.
        let mut short = Blake2s::new_keyed(b"key", 16);
        short.update(b"msg");
        let mut short_out = [0u8; 16];
        short.finalize_into(&mut short_out);
        let mut full = Blake2s::new_keyed(b"key", 32);
        full.update(b"msg");
        assert_ne!(short_out, full.finalize()[..16]);
    }

    #[test]
    #[should_panic(expected = "truncated-output")]
    fn digest_finalize_rejects_truncated_instances() {
        let mac = Blake2s::new_keyed(b"key", 16);
        let _ = mac.finalize();
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn zero_output_length_panics() {
        let _ = Blake2s::new_keyed(b"key", 0);
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn oversized_output_length_panics() {
        let _ = Blake2s::new_keyed(b"key", 33);
    }

    #[test]
    fn verify_keyed_rejects_tampering() {
        let tag = Blake2s::keyed_mac(b"key", b"message");
        assert!(Blake2s::verify_keyed(b"key", b"message", &tag));
        assert!(!Blake2s::verify_keyed(b"key", b"message!", &tag));
        assert!(!Blake2s::verify_keyed(b"yek", b"message", &tag));
        let mut bad = tag;
        bad[31] ^= 0x80;
        assert!(!Blake2s::verify_keyed(b"key", b"message", &bad));
    }

    #[test]
    fn different_keys_give_different_tags() {
        let a = Blake2s::keyed_mac(b"key-a", b"same message");
        let b = Blake2s::keyed_mac(b"key-b", b"same message");
        assert_ne!(a, b);
    }

    #[test]
    fn long_message_multi_block() {
        // Exercise the multi-block path with a message spanning many blocks.
        let key: Vec<u8> = (0..32u8).collect();
        let message = vec![0xabu8; 1000];
        let oneshot = Blake2s::keyed_mac(&key, &message);
        let mut mac = Blake2s::new_keyed(&key, 32);
        for chunk in message.chunks(7) {
            mac.update(chunk);
        }
        assert_eq!(mac.finalize(), oneshot);
    }
}
