//! From-scratch cryptographic substrate for the ERASMUS reproduction.
//!
//! ERASMUS measurements are `MAC_K(t, H(mem_t))` (Section 3 of the paper), so
//! the hash and MAC primitives are part of the system under reproduction and
//! are implemented here from the specifications rather than pulled from
//! external crates:
//!
//! * [`Sha1`] — FIPS 180-1 SHA-1 (kept only for the Table 1 size comparison,
//!   exactly as the paper does; not recommended for new measurements).
//! * [`Sha256`] — FIPS 180-2 SHA-256.
//! * [`Hmac`] — RFC 2104 HMAC over any [`Digest`].
//! * [`Blake2s`] — RFC 7693 BLAKE2s with native keyed mode.
//! * [`HmacDrbg`] — deterministic CSPRNG (HMAC-DRBG construction) used for
//!   the irregular measurement schedule of Section 3.5.
//! * [`constant_time_eq`] — timing-safe comparison used by verifiers.
//!
//! The [`Mac`] trait and the [`MacAlgorithm`] enum give the rest of the
//! workspace a single switch point for the three MAC constructions evaluated
//! in the paper. [`MacAlgorithm::with_key`] precomputes the key schedule
//! ([`KeyedMac`]) so the measure/verify hot paths absorb the HMAC ipad/opad
//! blocks (or the BLAKE2s key block) exactly once per device.
//!
//! Digest finalizers and MAC tags are fixed-size stack values — the hot path
//! performs no heap allocation.
//!
//! For fleet-scale measurement the [`multi`] module adds lane-interleaved
//! multi-buffer cores ([`Sha256xN`], [`Blake2sxN`], N = 4 or 8) behind the
//! [`MultiDigest`] trait, plus [`MultiKeyedMac`], which transposes existing
//! [`KeyedMac`] schedules across lanes: N equal-length messages are hashed
//! in lockstep so LLVM autovectorizes the compression to SSE/AVX/NEON —
//! each lane's output stays bit-identical to the scalar path.
//!
//! # Example
//!
//! ```
//! use erasmus_crypto::{MacAlgorithm, Digest, Sha256};
//!
//! // Hash some "device memory" and authenticate it with a device key.
//! let memory = vec![0u8; 1024];
//! let digest = Sha256::digest(&memory);
//! let key = [0x42u8; 32];
//! let tag = MacAlgorithm::HmacSha256.mac(&key, &digest);
//! assert!(MacAlgorithm::HmacSha256.verify(&key, &digest, &tag));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blake2s;
pub mod ct;
pub mod digest;
pub mod drbg;
pub mod hmac;
pub mod mac;
pub mod multi;
pub mod sha1;
pub mod sha256;

pub use blake2s::{Blake2s, Blake2sMac};
pub use ct::constant_time_eq;
pub use digest::Digest;
pub use drbg::HmacDrbg;
pub use hmac::{Hmac, HmacKey, HmacSha1, HmacSha256};
pub use mac::{KeyedMac, Mac, MacAlgorithm, MacTag, ParseMacAlgorithmError, MAX_TAG_LEN};
pub use multi::{
    Blake2sx4, Blake2sx8, Blake2sxN, MultiDigest, MultiKeyedMac, Sha256x4, Sha256x8, Sha256xN,
};
pub use sha1::Sha1;
pub use sha256::Sha256;
