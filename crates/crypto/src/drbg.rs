//! HMAC-DRBG: a deterministic CSPRNG in the style of NIST SP 800-90A.
//!
//! Section 3.5 of the paper proposes irregular measurement intervals driven
//! by a CSPRNG seeded with the device key `K`, so that schedule-aware mobile
//! malware cannot predict when the next measurement will fire. [`HmacDrbg`]
//! provides that generator; `erasmus-core`'s `IrregularSchedule` maps its
//! output into a bounded interval exactly as the paper's `map` function does.

use crate::hmac::HmacKey;
use crate::sha256::Sha256;

/// Deterministic HMAC-SHA256-based pseudo-random generator.
///
/// The construction follows the HMAC_DRBG update/generate loop of
/// SP 800-90A (without reseed counters or prediction-resistance requests,
/// which the paper's usage does not need): state is a key/value pair `(K, V)`
/// updated through HMAC invocations.
///
/// # Example
///
/// ```
/// use erasmus_crypto::HmacDrbg;
///
/// let mut a = HmacDrbg::new(b"device key", b"erasmus-schedule");
/// let mut b = HmacDrbg::new(b"device key", b"erasmus-schedule");
/// // Deterministic: same seed, same stream.
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert_eq!(a.generate(16), b.generate(16));
/// ```
#[derive(Clone)]
pub struct HmacDrbg {
    value: [u8; 32],
    /// Precomputed HMAC schedule for the current `K` — the generate loop
    /// MACs under the same key until the next state update, so the ipad/opad
    /// midstates are derived once per rekey instead of once per block.
    schedule: HmacKey<Sha256>,
}

impl HmacDrbg {
    /// Instantiates the generator from `seed` and a domain-separation
    /// `personalization` string.
    pub fn new(seed: &[u8], personalization: &[u8]) -> Self {
        let mut drbg = Self {
            value: [0x01u8; 32],
            schedule: HmacKey::new(&[0u8; 32]),
        };
        drbg.update(Some(&[seed, personalization]));
        drbg
    }

    /// One `K = HMAC(K, V || domain || provided…); V = HMAC(K, V)` step,
    /// streamed through the incremental HMAC so no scratch buffer is needed.
    fn rekey(&mut self, domain: u8, provided: &[&[u8]]) {
        let mut mac = self.schedule.begin();
        mac.update(&self.value);
        mac.update(&[domain]);
        for part in provided {
            mac.update(part);
        }
        self.schedule = HmacKey::new(&mac.finalize());
        self.value = self.schedule.mac(&self.value);
    }

    fn update(&mut self, provided: Option<&[&[u8]]>) {
        self.rekey(0x00, provided.unwrap_or(&[]));
        if let Some(parts) = provided {
            self.rekey(0x01, parts);
        }
    }

    /// Mixes additional entropy or context into the generator state.
    pub fn reseed(&mut self, additional: &[u8]) {
        self.update(Some(&[additional]));
    }

    /// Generates `len` pseudo-random bytes.
    pub fn generate(&mut self, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            self.value = self.schedule.mac(&self.value);
            let take = (len - out.len()).min(self.value.len());
            out.extend_from_slice(&self.value[..take]);
        }
        self.update(None);
        out
    }

    /// Generates a pseudo-random `u64` without heap allocation — this is the
    /// per-measurement draw behind the irregular schedule of Section 3.5.
    pub fn next_u64(&mut self) -> u64 {
        self.value = self.schedule.mac(&self.value);
        let mut bytes = [0u8; 8];
        bytes.copy_from_slice(&self.value[..8]);
        self.update(None);
        u64::from_be_bytes(bytes)
    }

    /// Generates a value uniformly distributed in `[low, high)` using
    /// rejection sampling to avoid modulo bias.
    ///
    /// This is the `map` function of Section 3.5: it bounds the next
    /// measurement interval between a lower and an upper limit.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn next_in_range(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "empty range [{low}, {high})");
        let span = high - low;
        // Rejection sampling: draw until the value falls below the largest
        // multiple of `span` representable in u64.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let candidate = self.next_u64();
            if candidate < zone {
                return low + candidate % span;
            }
        }
    }
}

impl std::fmt::Debug for HmacDrbg {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The state is seed-derived (often from the device key `K`).
        f.write_str("HmacDrbg(..redacted..)")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_is_redacted() {
        let drbg = HmacDrbg::new(b"secret seed", b"ctx");
        assert_eq!(format!("{drbg:?}"), "HmacDrbg(..redacted..)");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = HmacDrbg::new(b"seed", b"ctx");
        let mut b = HmacDrbg::new(b"seed", b"ctx");
        assert_eq!(a.generate(64), b.generate(64));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::new(b"seed-a", b"ctx");
        let mut b = HmacDrbg::new(b"seed-b", b"ctx");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn different_personalization_diverges() {
        let mut a = HmacDrbg::new(b"seed", b"ctx-a");
        let mut b = HmacDrbg::new(b"seed", b"ctx-b");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn successive_outputs_differ() {
        let mut drbg = HmacDrbg::new(b"seed", b"ctx");
        let first = drbg.generate(32);
        let second = drbg.generate(32);
        assert_ne!(first, second);
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::new(b"seed", b"ctx");
        let mut b = HmacDrbg::new(b"seed", b"ctx");
        b.reseed(b"extra entropy");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn generate_arbitrary_lengths() {
        let mut drbg = HmacDrbg::new(b"seed", b"len");
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            assert_eq!(drbg.generate(len).len(), len);
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut drbg = HmacDrbg::new(b"seed", b"range");
        for _ in 0..1000 {
            let v = drbg.next_in_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values_eventually() {
        let mut drbg = HmacDrbg::new(b"seed", b"coverage");
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[drbg.next_in_range(0, 8) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all 8 residues should appear: {seen:?}"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut drbg = HmacDrbg::new(b"seed", b"panic");
        let _ = drbg.next_in_range(5, 5);
    }

    #[test]
    fn single_value_range() {
        let mut drbg = HmacDrbg::new(b"seed", b"one");
        for _ in 0..10 {
            assert_eq!(drbg.next_in_range(42, 43), 42);
        }
    }

    #[test]
    fn rough_uniformity_over_small_range() {
        let mut drbg = HmacDrbg::new(b"seed", b"uniform");
        let mut counts = [0u32; 4];
        let n = 4000;
        for _ in 0..n {
            counts[drbg.next_in_range(0, 4) as usize] += 1;
        }
        for &c in &counts {
            // Expect ~1000 each; allow generous slack.
            assert!((700..1300).contains(&c), "counts {counts:?}");
        }
    }
}
