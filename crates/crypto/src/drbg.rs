//! HMAC-DRBG: a deterministic CSPRNG in the style of NIST SP 800-90A.
//!
//! Section 3.5 of the paper proposes irregular measurement intervals driven
//! by a CSPRNG seeded with the device key `K`, so that schedule-aware mobile
//! malware cannot predict when the next measurement will fire. [`HmacDrbg`]
//! provides that generator; `erasmus-core`'s `IrregularSchedule` maps its
//! output into a bounded interval exactly as the paper's `map` function does.

use crate::hmac::HmacSha256;

/// Deterministic HMAC-SHA256-based pseudo-random generator.
///
/// The construction follows the HMAC_DRBG update/generate loop of
/// SP 800-90A (without reseed counters or prediction-resistance requests,
/// which the paper's usage does not need): state is a key/value pair `(K, V)`
/// updated through HMAC invocations.
///
/// # Example
///
/// ```
/// use erasmus_crypto::HmacDrbg;
///
/// let mut a = HmacDrbg::new(b"device key", b"erasmus-schedule");
/// let mut b = HmacDrbg::new(b"device key", b"erasmus-schedule");
/// // Deterministic: same seed, same stream.
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert_eq!(a.generate(16), b.generate(16));
/// ```
#[derive(Debug, Clone)]
pub struct HmacDrbg {
    key: Vec<u8>,
    value: Vec<u8>,
}

impl HmacDrbg {
    /// Instantiates the generator from `seed` and a domain-separation
    /// `personalization` string.
    pub fn new(seed: &[u8], personalization: &[u8]) -> Self {
        let mut drbg = Self {
            key: vec![0u8; 32],
            value: vec![0x01u8; 32],
        };
        let mut seed_material = Vec::with_capacity(seed.len() + personalization.len());
        seed_material.extend_from_slice(seed);
        seed_material.extend_from_slice(personalization);
        drbg.update(Some(&seed_material));
        drbg
    }

    fn update(&mut self, provided: Option<&[u8]>) {
        let mut data = Vec::with_capacity(self.value.len() + 1 + provided.map_or(0, |p| p.len()));
        data.extend_from_slice(&self.value);
        data.push(0x00);
        if let Some(p) = provided {
            data.extend_from_slice(p);
        }
        self.key = HmacSha256::mac(&self.key, &data);
        self.value = HmacSha256::mac(&self.key, &self.value);

        if let Some(p) = provided {
            let mut data = Vec::with_capacity(self.value.len() + 1 + p.len());
            data.extend_from_slice(&self.value);
            data.push(0x01);
            data.extend_from_slice(p);
            self.key = HmacSha256::mac(&self.key, &data);
            self.value = HmacSha256::mac(&self.key, &self.value);
        }
    }

    /// Mixes additional entropy or context into the generator state.
    pub fn reseed(&mut self, additional: &[u8]) {
        self.update(Some(additional));
    }

    /// Generates `len` pseudo-random bytes.
    pub fn generate(&mut self, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        while out.len() < len {
            self.value = HmacSha256::mac(&self.key, &self.value);
            let take = (len - out.len()).min(self.value.len());
            out.extend_from_slice(&self.value[..take]);
        }
        self.update(None);
        out
    }

    /// Generates a pseudo-random `u64`.
    pub fn next_u64(&mut self) -> u64 {
        let bytes = self.generate(8);
        u64::from_be_bytes([
            bytes[0], bytes[1], bytes[2], bytes[3], bytes[4], bytes[5], bytes[6], bytes[7],
        ])
    }

    /// Generates a value uniformly distributed in `[low, high)` using
    /// rejection sampling to avoid modulo bias.
    ///
    /// This is the `map` function of Section 3.5: it bounds the next
    /// measurement interval between a lower and an upper limit.
    ///
    /// # Panics
    ///
    /// Panics if `low >= high`.
    pub fn next_in_range(&mut self, low: u64, high: u64) -> u64 {
        assert!(low < high, "empty range [{low}, {high})");
        let span = high - low;
        // Rejection sampling: draw until the value falls below the largest
        // multiple of `span` representable in u64.
        let zone = u64::MAX - (u64::MAX % span);
        loop {
            let candidate = self.next_u64();
            if candidate < zone {
                return low + candidate % span;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = HmacDrbg::new(b"seed", b"ctx");
        let mut b = HmacDrbg::new(b"seed", b"ctx");
        assert_eq!(a.generate(64), b.generate(64));
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = HmacDrbg::new(b"seed-a", b"ctx");
        let mut b = HmacDrbg::new(b"seed-b", b"ctx");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn different_personalization_diverges() {
        let mut a = HmacDrbg::new(b"seed", b"ctx-a");
        let mut b = HmacDrbg::new(b"seed", b"ctx-b");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn successive_outputs_differ() {
        let mut drbg = HmacDrbg::new(b"seed", b"ctx");
        let first = drbg.generate(32);
        let second = drbg.generate(32);
        assert_ne!(first, second);
    }

    #[test]
    fn reseed_changes_stream() {
        let mut a = HmacDrbg::new(b"seed", b"ctx");
        let mut b = HmacDrbg::new(b"seed", b"ctx");
        b.reseed(b"extra entropy");
        assert_ne!(a.generate(32), b.generate(32));
    }

    #[test]
    fn generate_arbitrary_lengths() {
        let mut drbg = HmacDrbg::new(b"seed", b"len");
        for len in [0usize, 1, 31, 32, 33, 64, 100] {
            assert_eq!(drbg.generate(len).len(), len);
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut drbg = HmacDrbg::new(b"seed", b"range");
        for _ in 0..1000 {
            let v = drbg.next_in_range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn range_covers_all_values_eventually() {
        let mut drbg = HmacDrbg::new(b"seed", b"coverage");
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[drbg.next_in_range(0, 8) as usize] = true;
        }
        assert!(
            seen.iter().all(|&s| s),
            "all 8 residues should appear: {seen:?}"
        );
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut drbg = HmacDrbg::new(b"seed", b"panic");
        let _ = drbg.next_in_range(5, 5);
    }

    #[test]
    fn single_value_range() {
        let mut drbg = HmacDrbg::new(b"seed", b"one");
        for _ in 0..10 {
            assert_eq!(drbg.next_in_range(42, 43), 42);
        }
    }

    #[test]
    fn rough_uniformity_over_small_range() {
        let mut drbg = HmacDrbg::new(b"seed", b"uniform");
        let mut counts = [0u32; 4];
        let n = 4000;
        for _ in 0..n {
            counts[drbg.next_in_range(0, 4) as usize] += 1;
        }
        for &c in &counts {
            // Expect ~1000 each; allow generous slack.
            assert!((700..1300).contains(&c), "counts {counts:?}");
        }
    }
}
