//! The [`Digest`] trait implemented by every hash function in this crate.

/// An incremental cryptographic hash function.
///
/// The trait mirrors the shape of the usual `digest` ecosystem trait but is
/// defined locally so that the crate stays dependency-free: ERASMUS
/// measurements hash the prover's memory (`H(mem_t)`), and the hash is part
/// of the reproduced system.
///
/// Finalizers return a fixed-size `[u8; N]` rather than a `Vec<u8>`: the
/// measurement hot path runs once per device per schedule tick across a
/// simulated fleet, and a heap allocation per digest would misrepresent the
/// cost structure the paper measures (real provers write the digest into a
/// stack buffer or register file).
///
/// # Example
///
/// ```
/// use erasmus_crypto::{Digest, Sha256};
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// let incremental = hasher.finalize();
/// assert_eq!(incremental, Sha256::digest(b"hello world"));
/// ```
pub trait Digest: Clone {
    /// Size of the produced digest in bytes.
    const OUTPUT_SIZE: usize;
    /// Internal block size in bytes (used by HMAC for key padding).
    const BLOCK_SIZE: usize;

    /// The fixed-size digest array, `[u8; Self::OUTPUT_SIZE]`.
    type Output: Copy + AsRef<[u8]> + PartialEq + Eq + std::fmt::Debug;

    /// Creates a fresh hasher state.
    fn new() -> Self;

    /// Absorbs `data` into the hasher state.
    fn update(&mut self, data: &[u8]);

    /// Consumes the hasher and returns the digest bytes on the stack.
    fn finalize(self) -> Self::Output;

    /// Convenience one-shot helper: hash `data` in a single call.
    fn digest(data: &[u8]) -> Self::Output
    where
        Self: Sized,
    {
        let mut hasher = Self::new();
        hasher.update(data);
        hasher.finalize()
    }
}

/// Largest digest block size among the hashes in this crate (all three are
/// 64-byte-block constructions), used to key HMAC without heap-allocating
/// the padded key block. `HmacKey::new` debug-asserts against it, so adding
/// a wider-block digest (e.g. SHA-512) forces this constant to grow with it.
pub(crate) const MAX_BLOCK_SIZE: usize = 64;
