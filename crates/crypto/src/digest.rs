//! The [`Digest`] trait implemented by every hash function in this crate.

/// An incremental cryptographic hash function.
///
/// The trait mirrors the shape of the usual `digest` ecosystem trait but is
/// defined locally so that the crate stays dependency-free: ERASMUS
/// measurements hash the prover's memory (`H(mem_t)`), and the hash is part
/// of the reproduced system.
///
/// # Example
///
/// ```
/// use erasmus_crypto::{Digest, Sha256};
///
/// let mut hasher = Sha256::new();
/// hasher.update(b"hello ");
/// hasher.update(b"world");
/// let incremental = hasher.finalize();
/// assert_eq!(incremental, Sha256::digest(b"hello world"));
/// ```
pub trait Digest: Clone {
    /// Size of the produced digest in bytes.
    const OUTPUT_SIZE: usize;
    /// Internal block size in bytes (used by HMAC for key padding).
    const BLOCK_SIZE: usize;

    /// Creates a fresh hasher state.
    fn new() -> Self;

    /// Absorbs `data` into the hasher state.
    fn update(&mut self, data: &[u8]);

    /// Consumes the hasher and returns the digest bytes.
    ///
    /// The returned vector always has length [`Digest::OUTPUT_SIZE`].
    fn finalize(self) -> Vec<u8>;

    /// Convenience one-shot helper: hash `data` in a single call.
    fn digest(data: &[u8]) -> Vec<u8>
    where
        Self: Sized,
    {
        let mut hasher = Self::new();
        hasher.update(data);
        hasher.finalize()
    }
}
