//! SHA-1 as specified in FIPS 180-1 / RFC 3174.
//!
//! The paper includes HMAC-SHA1 in Table 1 "for comparison purposes only" and
//! explicitly excludes it from its actual implementations due to the SHAttered
//! collision. This crate mirrors that stance: [`Sha1`] exists so that the
//! Table 1 executable-size comparison can be reproduced, but the rest of the
//! workspace defaults to SHA-256 or BLAKE2s.

use crate::digest::Digest;

const H0: [u32; 5] = [0x67452301, 0xefcdab89, 0x98badcfe, 0x10325476, 0xc3d2e1f0];

/// Incremental SHA-1 hasher.
///
/// # Example
///
/// ```
/// use erasmus_crypto::{Digest, Sha1};
///
/// let digest = Sha1::digest(b"abc");
/// assert_eq!(digest.len(), 20);
/// ```
#[derive(Debug, Clone)]
pub struct Sha1 {
    state: [u32; 5],
    buffer: [u8; 64],
    buffer_len: usize,
    total_len: u64,
}

impl Sha1 {
    /// Creates a fresh SHA-1 state.
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }

        let [mut a, mut b, mut c, mut d, mut e] = self.state;

        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | ((!b) & d), 0x5a827999u32),
                20..=39 => (b ^ c ^ d, 0x6ed9eba1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8f1bbcdc),
                _ => (b ^ c ^ d, 0xca62c1d6),
            };
            let temp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = temp;
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
    }
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest for Sha1 {
    const OUTPUT_SIZE: usize = 20;
    const BLOCK_SIZE: usize = 64;

    type Output = [u8; 20];

    fn new() -> Self {
        Sha1::new()
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);

        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }

        // Aligned full blocks compress straight from the input slice; the
        // copy through `self.buffer` is only for partial blocks.
        let mut chunks = data.chunks_exact(64);
        for chunk in &mut chunks {
            self.compress(chunk.try_into().expect("64-byte chunk"));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            self.buffer[..rem.len()].copy_from_slice(rem);
            self.buffer_len = rem.len();
        }
    }

    fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        let mut padding = [0u8; 72];
        padding[0] = 0x80;
        let msg_len = (self.total_len % 64) as usize;
        let zero_count = if msg_len < 56 {
            55 - msg_len
        } else {
            119 - msg_len
        };
        let pad_len = 1 + zero_count + 8;
        padding[1 + zero_count..pad_len].copy_from_slice(&bit_len.to_be_bytes());
        self.update(&padding[..pad_len]);
        debug_assert_eq!(self.buffer_len, 0);

        let mut out = [0u8; 20];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_message() {
        assert_eq!(
            hex(&Sha1::digest(b"")),
            "da39a3ee5e6b4b0d3255bfef95601890afd80709"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&Sha1::digest(b"abc")),
            "a9993e364706816aba3e25717850c26c9cd0d89d"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&Sha1::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha1::digest(&msg)),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..777u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 200, 776, 777] {
            let mut hasher = Sha1::new();
            hasher.update(&data[..split]);
            hasher.update(&data[split..]);
            assert_eq!(hasher.finalize(), Sha1::digest(&data), "split at {split}");
        }
    }

    #[test]
    fn aligned_fast_path_is_stream_identical() {
        // Regression for the direct-compress fast path (see the SHA-256
        // twin test): aligned full blocks must hash identically whether
        // they stream through the buffer or compress straight from input.
        let data: Vec<u8> = (0..512u32).map(|i| (i * 7 % 251) as u8).collect();
        let oneshot = Sha1::digest(&data);
        let mut aligned = Sha1::new();
        for chunk in data.chunks(64) {
            aligned.update(chunk);
        }
        assert_eq!(aligned.finalize(), oneshot);
        let mut mixed = Sha1::new();
        mixed.update(&data[..10]);
        mixed.update(&data[10..202]);
        mixed.update(&data[202..512]);
        assert_eq!(mixed.finalize(), oneshot);
    }

    #[test]
    fn output_size_is_twenty_bytes() {
        assert_eq!(Sha1::digest(b"x").len(), 20);
        assert_eq!(<Sha1 as Digest>::OUTPUT_SIZE, 20);
    }
}
