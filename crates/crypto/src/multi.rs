//! Lane-interleaved multi-buffer hashing: N independent messages hashed in
//! lockstep.
//!
//! ERASMUS provers spend almost all of their attestation time computing
//! `H(mem_t)` over the application memory. One SHA-256 (or BLAKE2s)
//! compression is a long dependency chain of 32-bit operations, so a single
//! message cannot use the host's vector units — but a *fleet* harness has
//! many equal-sized memory images to hash at the same simulated instant.
//! [`Sha256xN`] and [`Blake2sxN`] exploit that: the hash state is stored
//! **lane-major** (`[[u32; N]; 8]` — word `w` of lane `l` lives at
//! `state[w][l]`), and every round operates on all `N` lanes elementwise.
//! LLVM autovectorizes those fixed-size elementwise loops to SSE/AVX/NEON —
//! no `unsafe`, no intrinsics, no target feature detection.
//!
//! ```text
//!            lane 0   lane 1   lane 2   lane 3
//!  state[a] [ a_0    | a_1    | a_2    | a_3    ]  ← one SIMD register
//!  state[b] [ b_0    | b_1    | b_2    | b_3    ]
//!    ⋮                    ⋮
//!  w[i]     [ w_i^0  | w_i^1  | w_i^2  | w_i^3  ]  message schedule,
//!                                                   also lane-major
//! ```
//!
//! The [`MultiDigest`] trait mirrors [`Digest`](crate::Digest) for equal-length inputs;
//! [`MultiKeyedMac`] rides the *existing* precomputed key schedules — the
//! HMAC ipad/opad midstates of [`HmacKey`] and the keyed
//! BLAKE2s key block — transposed across the lanes, so lane-batched
//! measurements reuse exactly the per-device states the scalar hot path
//! uses. Every lane produces a digest/tag bit-identical to the scalar
//! [`Sha256`]/[`Blake2s`]/[`KeyedMac`] paths (pinned by the
//! `multi_lane_equivalence` suite).

use crate::blake2s::{Blake2s, IV as BLAKE2S_IV, SIGMA};
use crate::hmac::HmacKey;
use crate::mac::{KeyedMac, MacAlgorithm, MacTag};
use crate::sha256::{Sha256, H0 as SHA256_H0, K};

/// An incremental hash over `N` equal-length messages processed in lockstep.
///
/// The shape mirrors [`Digest`](crate::Digest), with every input and output widened to `N`
/// lanes. All `update` calls must pass lanes of equal length (the lanes
/// share one block counter), which is exactly the fleet-measurement case:
/// every device hashes the same-sized memory image.
///
/// # Example
///
/// ```
/// use erasmus_crypto::{Digest, MultiDigest, Sha256, Sha256x4};
///
/// let inputs = [&b"a"[..], b"b", b"c", b"d"];
/// let digests = Sha256x4::digest(inputs);
/// for (lane, input) in inputs.iter().enumerate() {
///     assert_eq!(digests[lane], Sha256::digest(input));
/// }
/// ```
pub trait MultiDigest<const N: usize>: Clone {
    /// Size of each lane's digest in bytes.
    const OUTPUT_SIZE: usize;
    /// Internal block size in bytes (shared by all lanes).
    const BLOCK_SIZE: usize;

    /// The fixed-size digest array each lane produces.
    type Output: Copy + AsRef<[u8]> + PartialEq + Eq + std::fmt::Debug;

    /// Creates a fresh `N`-lane hasher.
    fn new() -> Self;

    /// Absorbs one equal-length slice per lane.
    ///
    /// # Panics
    ///
    /// Panics if the lanes are not all the same length.
    fn update(&mut self, lanes: [&[u8]; N]);

    /// Consumes the hasher and returns each lane's digest.
    fn finalize(self) -> [Self::Output; N];

    /// One-shot helper: hash `N` equal-length messages in lockstep.
    fn digest(lanes: [&[u8]; N]) -> [Self::Output; N]
    where
        Self: Sized,
    {
        let mut hasher = Self::new();
        hasher.update(lanes);
        hasher.finalize()
    }
}

// ---------------------------------------------------------------------------
// Lane-wide u32 helpers. Each takes/returns `[u32; N]` and applies the
// operation elementwise; the loops are fixed-trip-count and branch-free, the
// exact shape LLVM's loop vectorizer turns into packed-integer SIMD.
// ---------------------------------------------------------------------------

#[inline(always)]
fn splat<const N: usize>(x: u32) -> [u32; N] {
    [x; N]
}

#[inline(always)]
fn add<const N: usize>(mut a: [u32; N], b: [u32; N]) -> [u32; N] {
    for (a, b) in a.iter_mut().zip(b) {
        *a = a.wrapping_add(b);
    }
    a
}

#[inline(always)]
fn xor<const N: usize>(mut a: [u32; N], b: [u32; N]) -> [u32; N] {
    for (a, b) in a.iter_mut().zip(b) {
        *a ^= b;
    }
    a
}

#[inline(always)]
fn and<const N: usize>(mut a: [u32; N], b: [u32; N]) -> [u32; N] {
    for (a, b) in a.iter_mut().zip(b) {
        *a &= b;
    }
    a
}

#[inline(always)]
fn not<const N: usize>(mut a: [u32; N]) -> [u32; N] {
    for a in a.iter_mut() {
        *a = !*a;
    }
    a
}

#[inline(always)]
fn shr<const N: usize>(mut a: [u32; N], r: u32) -> [u32; N] {
    for a in a.iter_mut() {
        *a >>= r;
    }
    a
}

#[inline(always)]
fn rotr<const N: usize>(mut a: [u32; N], r: u32) -> [u32; N] {
    for a in a.iter_mut() {
        *a = a.rotate_right(r);
    }
    a
}

#[inline(always)]
fn xor3<const N: usize>(a: [u32; N], b: [u32; N], c: [u32; N]) -> [u32; N] {
    xor(xor(a, b), c)
}

/// Asserts the equal-length lane contract shared by every [`MultiDigest`].
#[inline]
fn lane_len<const N: usize>(lanes: &[&[u8]; N]) -> usize {
    let len = lanes[0].len();
    assert!(
        lanes.iter().all(|lane| lane.len() == len),
        "multi-lane update requires equal-length lanes"
    );
    len
}

// ---------------------------------------------------------------------------
// SHA-256, N lanes.
// ---------------------------------------------------------------------------

/// `N`-lane SHA-256: `N` independent messages compressed in lockstep.
///
/// Use the [`Sha256x4`] / [`Sha256x8`] aliases; 4 lanes fill a 128-bit
/// vector unit, 8 lanes a 256-bit one.
#[derive(Debug, Clone)]
pub struct Sha256xN<const N: usize> {
    /// Lane-major state: `state[word][lane]`.
    state: [[u32; N]; 8],
    /// One partial-block buffer per lane; all lanes share `buffer_len`.
    buffer: [[u8; 64]; N],
    buffer_len: usize,
    /// Per-lane message length in bytes (identical across lanes).
    total_len: u64,
}

/// 4-lane SHA-256 (fills one 128-bit vector register per state word).
pub type Sha256x4 = Sha256xN<4>;
/// 8-lane SHA-256 (fills one 256-bit vector register per state word).
pub type Sha256x8 = Sha256xN<8>;

/// The lane-interleaved SHA-256 compression: one message schedule and one
/// round function evaluation, `N` lanes wide. Free function over the state
/// so callers can pass buffer-derived block references without aliasing
/// the mutable state borrow.
fn sha256_compress<const N: usize>(state: &mut [[u32; N]; 8], blocks: [&[u8; 64]; N]) {
    let mut w = [[0u32; N]; 64];
    for (i, w_i) in w.iter_mut().take(16).enumerate() {
        for (slot, block) in w_i.iter_mut().zip(blocks) {
            *slot = u32::from_be_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
    }
    for i in 16..64 {
        let s0 = xor3(rotr(w[i - 15], 7), rotr(w[i - 15], 18), shr(w[i - 15], 3));
        let s1 = xor3(rotr(w[i - 2], 17), rotr(w[i - 2], 19), shr(w[i - 2], 10));
        w[i] = add(add(w[i - 16], s0), add(w[i - 7], s1));
    }

    let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;

    for i in 0..64 {
        let s1 = xor3(rotr(e, 6), rotr(e, 11), rotr(e, 25));
        let ch = xor(and(e, f), and(not(e), g));
        let temp1 = add(add(h, s1), add(ch, add(splat(K[i]), w[i])));
        let s0 = xor3(rotr(a, 2), rotr(a, 13), rotr(a, 22));
        let maj = xor3(and(a, b), and(a, c), and(b, c));
        let temp2 = add(s0, maj);

        h = g;
        g = f;
        f = e;
        e = add(d, temp1);
        d = c;
        c = b;
        b = a;
        a = add(temp1, temp2);
    }

    state[0] = add(state[0], a);
    state[1] = add(state[1], b);
    state[2] = add(state[2], c);
    state[3] = add(state[3], d);
    state[4] = add(state[4], e);
    state[5] = add(state[5], f);
    state[6] = add(state[6], g);
    state[7] = add(state[7], h);
}

impl<const N: usize> Sha256xN<N> {
    /// Creates a fresh `N`-lane state (every lane at the SHA-256 IV).
    pub fn new() -> Self {
        assert!(N >= 1, "at least one lane is required");
        Self {
            state: std::array::from_fn(|word| splat(SHA256_H0[word])),
            buffer: [[0u8; 64]; N],
            buffer_len: 0,
            total_len: 0,
        }
    }

    /// Transposes `N` scalar midstates into one lane-major state.
    ///
    /// This is how [`MultiKeyedMac`] rides the precomputed HMAC ipad/opad
    /// midstates: each lane starts from a *different* keyed midstate and the
    /// lanes then absorb their messages in lockstep.
    ///
    /// # Panics
    ///
    /// Panics if any midstate holds buffered partial input (lanes must be
    /// block-aligned to share a schedule) or if the midstates have absorbed
    /// different message lengths.
    pub fn from_midstates(states: [&Sha256; N]) -> Self {
        assert!(N >= 1, "at least one lane is required");
        let (_, total_len, _) = states[0].lane_parts();
        let state = std::array::from_fn(|word| {
            std::array::from_fn(|lane| {
                let (words, lane_total, buffered) = states[lane].lane_parts();
                assert_eq!(buffered, 0, "lane midstates must be block-aligned");
                assert_eq!(
                    lane_total, total_len,
                    "lane midstates must have absorbed equal lengths"
                );
                words[word]
            })
        });
        Self {
            state,
            buffer: [[0u8; 64]; N],
            buffer_len: 0,
            total_len,
        }
    }
}

impl<const N: usize> Default for Sha256xN<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> MultiDigest<N> for Sha256xN<N> {
    const OUTPUT_SIZE: usize = 32;
    const BLOCK_SIZE: usize = 64;

    type Output = [u8; 32];

    fn new() -> Self {
        Sha256xN::new()
    }

    fn update(&mut self, mut lanes: [&[u8]; N]) {
        let len = lane_len(&lanes);
        self.total_len = self.total_len.wrapping_add(len as u64);

        if self.buffer_len > 0 {
            let take = (64 - self.buffer_len).min(len);
            for (buffer, lane) in self.buffer.iter_mut().zip(lanes.iter_mut()) {
                buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&lane[..take]);
                *lane = &lane[take..];
            }
            self.buffer_len += take;
            if self.buffer_len == 64 {
                let blocks = self.buffer;
                sha256_compress(&mut self.state, std::array::from_fn(|lane| &blocks[lane]));
                self.buffer_len = 0;
            }
        }

        let full_blocks = lanes[0].len() / 64;
        for block in 0..full_blocks {
            let offset = block * 64;
            // Full blocks compress straight from the input slices — the
            // same zero-copy fast path the scalar cores use.
            let blocks: [&[u8; 64]; N] = std::array::from_fn(|lane| {
                lanes[lane][offset..offset + 64]
                    .try_into()
                    .expect("64-byte chunk")
            });
            sha256_compress(&mut self.state, blocks);
        }

        let rem_offset = full_blocks * 64;
        let rem = lanes[0].len() - rem_offset;
        if rem > 0 {
            for (buffer, lane) in self.buffer.iter_mut().zip(lanes) {
                buffer[..rem].copy_from_slice(&lane[rem_offset..]);
            }
            self.buffer_len = rem;
        }
    }

    fn finalize(mut self) -> [[u8; 32]; N] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Identical padding for every lane (the lengths are equal), built on
        // the stack exactly like the scalar finalizer.
        let mut padding = [0u8; 72];
        padding[0] = 0x80;
        let msg_len = (self.total_len % 64) as usize;
        let zero_count = if msg_len < 56 {
            55 - msg_len
        } else {
            119 - msg_len
        };
        let pad_len = 1 + zero_count + 8;
        padding[1 + zero_count..pad_len].copy_from_slice(&bit_len.to_be_bytes());
        self.update([&padding[..pad_len]; N]);
        debug_assert_eq!(self.buffer_len, 0);

        std::array::from_fn(|lane| {
            let mut out = [0u8; 32];
            for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
                chunk.copy_from_slice(&word[lane].to_be_bytes());
            }
            out
        })
    }
}

// ---------------------------------------------------------------------------
// BLAKE2s, N lanes.
// ---------------------------------------------------------------------------

/// `N`-lane BLAKE2s-256 (32-byte output per lane), with the keyed mode
/// entered by transposing scalar keyed states via
/// [`Blake2sxN::from_keyed_states`].
#[derive(Debug, Clone)]
pub struct Blake2sxN<const N: usize> {
    /// Lane-major chain value: `h[word][lane]`.
    h: [[u32; N]; 8],
    /// Byte counter, shared by all lanes (equal-length inputs).
    t: [u32; 2],
    buffer: [[u8; 64]; N],
    buffer_len: usize,
}

/// 4-lane BLAKE2s.
pub type Blake2sx4 = Blake2sxN<4>;
/// 8-lane BLAKE2s.
pub type Blake2sx8 = Blake2sxN<8>;

/// Lane-wide BLAKE2s compression. `last` flags the final block for every
/// lane at once (the shared counter keeps the lanes in lockstep).
fn blake2s_compress<const N: usize>(
    h: &mut [[u32; N]; 8],
    t: [u32; 2],
    blocks: [&[u8; 64]; N],
    last: bool,
) {
    let mut m = [[0u32; N]; 16];
    for (i, m_i) in m.iter_mut().enumerate() {
        for (slot, block) in m_i.iter_mut().zip(blocks) {
            *slot = u32::from_le_bytes([
                block[4 * i],
                block[4 * i + 1],
                block[4 * i + 2],
                block[4 * i + 3],
            ]);
        }
    }

    let mut v = [[0u32; N]; 16];
    v[..8].copy_from_slice(h);
    for (word, iv) in v[8..].iter_mut().zip(BLAKE2S_IV) {
        *word = splat(iv);
    }
    v[12] = xor(v[12], splat(t[0]));
    v[13] = xor(v[13], splat(t[1]));
    if last {
        v[14] = not(v[14]);
    }

    #[inline(always)]
    fn g<const N: usize>(
        v: &mut [[u32; N]; 16],
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        x: [u32; N],
        y: [u32; N],
    ) {
        v[a] = add(add(v[a], v[b]), x);
        v[d] = rotr(xor(v[d], v[a]), 16);
        v[c] = add(v[c], v[d]);
        v[b] = rotr(xor(v[b], v[c]), 12);
        v[a] = add(add(v[a], v[b]), y);
        v[d] = rotr(xor(v[d], v[a]), 8);
        v[c] = add(v[c], v[d]);
        v[b] = rotr(xor(v[b], v[c]), 7);
    }

    for s in &SIGMA {
        g(&mut v, 0, 4, 8, 12, m[s[0]], m[s[1]]);
        g(&mut v, 1, 5, 9, 13, m[s[2]], m[s[3]]);
        g(&mut v, 2, 6, 10, 14, m[s[4]], m[s[5]]);
        g(&mut v, 3, 7, 11, 15, m[s[6]], m[s[7]]);
        g(&mut v, 0, 5, 10, 15, m[s[8]], m[s[9]]);
        g(&mut v, 1, 6, 11, 12, m[s[10]], m[s[11]]);
        g(&mut v, 2, 7, 8, 13, m[s[12]], m[s[13]]);
        g(&mut v, 3, 4, 9, 14, m[s[14]], m[s[15]]);
    }

    for i in 0..8 {
        h[i] = xor(h[i], xor(v[i], v[i + 8]));
    }
}

impl<const N: usize> Blake2sxN<N> {
    /// Creates a fresh unkeyed `N`-lane BLAKE2s-256 state.
    pub fn new() -> Self {
        assert!(N >= 1, "at least one lane is required");
        let mut h: [[u32; N]; 8] = std::array::from_fn(|word| splat(BLAKE2S_IV[word]));
        // Parameter block word 0: digest length 32, no key, fanout=1,
        // depth=1 — the unkeyed Blake2s::new() parameters.
        h[0] = xor(h[0], splat(0x0101_0000 ^ 32));
        Self {
            h,
            t: [0, 0],
            buffer: [[0u8; 64]; N],
            buffer_len: 0,
        }
    }

    /// Transposes `N` scalar BLAKE2s states — typically freshly keyed ones,
    /// whose key block sits buffered awaiting the first message byte — into
    /// one lane-major state.
    ///
    /// # Panics
    ///
    /// Panics if any state is a truncated-output instance (all lanes must
    /// produce the full 32-byte digest) or if the states are not at the same
    /// stream position (equal counters and buffered lengths).
    pub fn from_keyed_states(states: [&Blake2s; N]) -> Self {
        assert!(N >= 1, "at least one lane is required");
        let (_, t, _, buffer_len, _) = states[0].lane_parts();
        let h = std::array::from_fn(|word| {
            std::array::from_fn(|lane| {
                let (h, lane_t, _, lane_buffered, out_len) = states[lane].lane_parts();
                assert_eq!(out_len, 32, "lane states must use the full 32-byte output");
                assert_eq!(lane_t, t, "lane states must share one stream position");
                assert_eq!(
                    lane_buffered, buffer_len,
                    "lane states must share one stream position"
                );
                h[word]
            })
        });
        let mut buffer = [[0u8; 64]; N];
        for (buffer, state) in buffer.iter_mut().zip(states) {
            let (_, _, buffered, _, _) = state.lane_parts();
            *buffer = *buffered;
        }
        Self {
            h,
            t,
            buffer,
            buffer_len,
        }
    }

    fn increment_counter(&mut self, bytes: u32) {
        let (lo, carry) = self.t[0].overflowing_add(bytes);
        self.t[0] = lo;
        if carry {
            self.t[1] = self.t[1].wrapping_add(1);
        }
    }
}

impl<const N: usize> Default for Blake2sxN<N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<const N: usize> MultiDigest<N> for Blake2sxN<N> {
    const OUTPUT_SIZE: usize = 32;
    const BLOCK_SIZE: usize = 64;

    type Output = [u8; 32];

    fn new() -> Self {
        Blake2sxN::new()
    }

    fn update(&mut self, mut lanes: [&[u8]; N]) {
        lane_len(&lanes);
        // Like the scalar core: a full buffer only compresses once more data
        // arrives, because the final block must carry the "last" flag.
        while !lanes[0].is_empty() {
            if self.buffer_len == 64 {
                self.increment_counter(64);
                let blocks = self.buffer;
                blake2s_compress(
                    &mut self.h,
                    self.t,
                    std::array::from_fn(|lane| &blocks[lane]),
                    false,
                );
                self.buffer_len = 0;
            }
            // With the buffer empty, every full block except the trailing
            // 1..=64 bytes (which must stay buffered for the last-block
            // flag) compresses straight from the input slices — no copy.
            if self.buffer_len == 0 {
                while lanes[0].len() > 64 {
                    self.increment_counter(64);
                    let blocks: [&[u8; 64]; N] = std::array::from_fn(|lane| {
                        lanes[lane][..64].try_into().expect("64-byte chunk")
                    });
                    blake2s_compress(&mut self.h, self.t, blocks, false);
                    for lane in lanes.iter_mut() {
                        *lane = &lane[64..];
                    }
                }
            }
            let take = (64 - self.buffer_len).min(lanes[0].len());
            for (buffer, lane) in self.buffer.iter_mut().zip(lanes.iter_mut()) {
                buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&lane[..take]);
                *lane = &lane[take..];
            }
            self.buffer_len += take;
        }
    }

    fn finalize(mut self) -> [[u8; 32]; N] {
        self.increment_counter(self.buffer_len as u32);
        let mut blocks = [[0u8; 64]; N];
        for (block, buffer) in blocks.iter_mut().zip(self.buffer) {
            block[..self.buffer_len].copy_from_slice(&buffer[..self.buffer_len]);
        }
        blake2s_compress(
            &mut self.h,
            self.t,
            std::array::from_fn(|lane| &blocks[lane]),
            true,
        );

        std::array::from_fn(|lane| {
            let mut out = [0u8; 32];
            for (chunk, word) in out.chunks_exact_mut(4).zip(self.h) {
                chunk.copy_from_slice(&word[lane].to_le_bytes());
            }
            out
        })
    }
}

// ---------------------------------------------------------------------------
// Multi-lane keyed MAC.
// ---------------------------------------------------------------------------

/// `N` precomputed MAC key schedules transposed into lane form: one tag per
/// lane from one lockstep pass over `N` equal-length messages.
///
/// Built from existing [`KeyedMac`] schedules, so the once-per-device key
/// derivation is shared with the scalar hot path:
///
/// * HMAC-SHA256 — the ipad and opad midstates of each lane are transposed
///   into two [`Sha256xN`] states; a MAC is one lockstep inner pass and one
///   lockstep outer pass.
/// * Keyed BLAKE2s — the per-lane keyed states (key block buffered) are
///   transposed into one [`Blake2sxN`].
/// * HMAC-SHA1 — kept for the Table 1 comparison only; there is no
///   lane-interleaved SHA-1 core, so the lanes fall back to the scalar
///   schedules (still one `MultiKeyedMac` call site for every algorithm).
///
/// # Example
///
/// ```
/// use erasmus_crypto::{MacAlgorithm, MultiKeyedMac};
///
/// let keys: Vec<_> = (0u8..4)
///     .map(|i| MacAlgorithm::HmacSha256.with_key(&[i; 32]))
///     .collect();
/// let multi = MultiKeyedMac::<4>::new(std::array::from_fn(|i| &keys[i]));
/// let tags = multi.mac([&b"same-length-msg."[..]; 4]);
/// for (lane, keyed) in keys.iter().enumerate() {
///     assert_eq!(tags[lane], keyed.mac(b"same-length-msg."));
/// }
/// ```
#[derive(Clone)]
pub struct MultiKeyedMac<const N: usize> {
    state: MultiKeyedState<N>,
}

#[derive(Clone)]
enum MultiKeyedState<const N: usize> {
    HmacSha256 {
        inner: Sha256xN<N>,
        outer: Sha256xN<N>,
    },
    KeyedBlake2s(Blake2sxN<N>),
    /// Scalar fallback lanes (HMAC-SHA1 has no lane-interleaved core).
    Scalar(Box<[KeyedMac; N]>),
}

impl<const N: usize> MultiKeyedMac<N> {
    /// Transposes `N` per-device key schedules into lane form.
    ///
    /// # Panics
    ///
    /// Panics if the schedules do not all use the same [`MacAlgorithm`].
    pub fn new(lanes: [&KeyedMac; N]) -> Self {
        assert!(N >= 1, "at least one lane is required");
        let algorithm = lanes[0].algorithm();
        assert!(
            lanes.iter().all(|lane| lane.algorithm() == algorithm),
            "all lanes must use the same MAC algorithm"
        );
        let state = match algorithm {
            MacAlgorithm::HmacSha256 => {
                let keys: [&HmacKey<Sha256>; N] = std::array::from_fn(|lane| match lanes[lane] {
                    KeyedMac::HmacSha256(key) => key,
                    _ => unreachable!("algorithm checked above"),
                });
                MultiKeyedState::HmacSha256 {
                    inner: Sha256xN::from_midstates(std::array::from_fn(|lane| {
                        keys[lane].lane_midstates().0
                    })),
                    outer: Sha256xN::from_midstates(std::array::from_fn(|lane| {
                        keys[lane].lane_midstates().1
                    })),
                }
            }
            MacAlgorithm::KeyedBlake2s => {
                let states: [&Blake2s; N] = std::array::from_fn(|lane| match lanes[lane] {
                    KeyedMac::KeyedBlake2s(state) => state,
                    _ => unreachable!("algorithm checked above"),
                });
                MultiKeyedState::KeyedBlake2s(Blake2sxN::from_keyed_states(states))
            }
            MacAlgorithm::HmacSha1 => {
                MultiKeyedState::Scalar(Box::new(std::array::from_fn(|lane| lanes[lane].clone())))
            }
        };
        Self { state }
    }

    /// The algorithm every lane was keyed for.
    pub fn algorithm(&self) -> MacAlgorithm {
        match &self.state {
            MultiKeyedState::HmacSha256 { .. } => MacAlgorithm::HmacSha256,
            MultiKeyedState::KeyedBlake2s(_) => MacAlgorithm::KeyedBlake2s,
            MultiKeyedState::Scalar(lanes) => lanes[0].algorithm(),
        }
    }

    /// Tag length in bytes (identical for every lane).
    pub fn tag_len(&self) -> usize {
        self.algorithm().tag_len()
    }

    /// Computes one tag per lane over `N` equal-length messages.
    ///
    /// Each lane's tag is bit-identical to `KeyedMac::mac` under the same
    /// schedule.
    ///
    /// # Panics
    ///
    /// Panics if the messages are not all the same length (the lane-
    /// interleaved cores share one block counter). The scalar-fallback
    /// algorithms accept ragged messages, but callers should not rely on it.
    pub fn mac(&self, messages: [&[u8]; N]) -> [MacTag; N] {
        match &self.state {
            MultiKeyedState::HmacSha256 { inner, outer } => {
                let mut inner = inner.clone();
                inner.update(messages);
                let digests = inner.finalize();
                let mut outer = outer.clone();
                outer.update(std::array::from_fn(|lane| &digests[lane][..]));
                let tags = outer.finalize();
                std::array::from_fn(|lane| MacTag::from(tags[lane]))
            }
            MultiKeyedState::KeyedBlake2s(state) => {
                let mut state = state.clone();
                state.update(messages);
                let tags = state.finalize();
                std::array::from_fn(|lane| MacTag::from(tags[lane]))
            }
            MultiKeyedState::Scalar(lanes) => {
                std::array::from_fn(|lane| lanes[lane].mac(messages[lane]))
            }
        }
    }
}

impl<const N: usize> std::fmt::Debug for MultiKeyedMac<N> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Lane states are key-derived material; never print them.
        write!(f, "MultiKeyedMac({}x{N}, ..redacted..)", self.algorithm())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digest::Digest;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha256_lanes_match_fips_vectors() {
        // Distinct KAT inputs of equal length ("abc" x reorderings).
        let digests = Sha256x4::digest([&b"abc"[..], b"bca", b"cab", b"abc"]);
        assert_eq!(
            hex(&digests[0]),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
        assert_eq!(digests[0], digests[3]);
        assert_ne!(digests[0], digests[1]);
        for (lane, input) in [&b"abc"[..], b"bca", b"cab", b"abc"].iter().enumerate() {
            assert_eq!(digests[lane], Sha256::digest(input), "lane {lane}");
        }
    }

    #[test]
    fn sha256_lanes_match_scalar_across_lengths() {
        for len in [0usize, 1, 55, 56, 63, 64, 65, 127, 128, 1000] {
            let messages: Vec<Vec<u8>> = (0..8u8)
                .map(|lane| (0..len).map(|i| (i as u8).wrapping_mul(lane + 1)).collect())
                .collect();
            let lanes: [&[u8]; 8] = std::array::from_fn(|l| &messages[l][..]);
            let digests = Sha256x8::digest(lanes);
            for lane in 0..8 {
                assert_eq!(
                    digests[lane],
                    Sha256::digest(&messages[lane]),
                    "len {len} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn sha256_incremental_matches_oneshot() {
        let messages: Vec<Vec<u8>> = (0..4u8).map(|lane| vec![lane; 200]).collect();
        for split in [0usize, 1, 63, 64, 65, 199, 200] {
            let mut hasher = Sha256x4::new();
            hasher.update(std::array::from_fn(|l| &messages[l][..split]));
            hasher.update(std::array::from_fn(|l| &messages[l][split..]));
            let digests = hasher.finalize();
            for (lane, message) in messages.iter().enumerate() {
                assert_eq!(digests[lane], Sha256::digest(message), "split {split}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "equal-length")]
    fn ragged_lanes_panic() {
        let mut hasher = Sha256x4::new();
        hasher.update([&b"a"[..], b"ab", b"a", b"a"]);
    }

    #[test]
    fn blake2s_lanes_match_scalar() {
        for len in [0usize, 1, 63, 64, 65, 128, 129, 500] {
            let messages: Vec<Vec<u8>> = (0..4u8)
                .map(|lane| (0..len).map(|i| (i as u8) ^ lane).collect())
                .collect();
            let digests = Blake2sx4::digest(std::array::from_fn(|l| &messages[l][..]));
            for lane in 0..4 {
                assert_eq!(
                    digests[lane],
                    Blake2s::digest(&messages[lane]),
                    "len {len} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn blake2s_rfc7693_vector_in_every_lane() {
        let digests = Blake2sx8::digest([&b"abc"[..]; 8]);
        for digest in digests {
            assert_eq!(
                hex(&digest),
                "508c5e8c327c14e2e1a72ba34eeb452f37458b209ed63a294d999b4c86675982"
            );
        }
    }

    #[test]
    fn multi_keyed_mac_matches_scalar_for_all_algorithms() {
        for alg in MacAlgorithm::ALL {
            let keys: Vec<KeyedMac> = (0u8..4).map(|i| alg.with_key(&[i ^ 0x5a; 32])).collect();
            let multi = MultiKeyedMac::<4>::new(std::array::from_fn(|i| &keys[i]));
            assert_eq!(multi.algorithm(), alg);
            assert_eq!(multi.tag_len(), alg.tag_len());
            let messages: Vec<Vec<u8>> = (0..4u8).map(|lane| vec![lane; 40]).collect();
            let tags = multi.mac(std::array::from_fn(|l| &messages[l][..]));
            for (lane, keyed) in keys.iter().enumerate() {
                assert_eq!(tags[lane], keyed.mac(&messages[lane]), "{alg} lane {lane}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "same MAC algorithm")]
    fn mixed_algorithms_panic() {
        let a = MacAlgorithm::HmacSha256.with_key(&[1; 32]);
        let b = MacAlgorithm::KeyedBlake2s.with_key(&[1; 32]);
        let _ = MultiKeyedMac::<2>::new([&a, &b]);
    }

    #[test]
    fn multi_keyed_mac_debug_is_redacted() {
        let keyed = MacAlgorithm::HmacSha256.with_key(&[0xffu8; 32]);
        let multi = MultiKeyedMac::<4>::new([&keyed; 4]);
        let text = format!("{multi:?}");
        assert!(text.contains("redacted"), "{text}");
        assert!(!text.contains("ff"), "{text}");
    }

    #[test]
    fn single_lane_is_valid() {
        let digests = Sha256xN::<1>::digest([&b"hello"[..]]);
        assert_eq!(digests[0], Sha256::digest(b"hello"));
        let keyed = MacAlgorithm::KeyedBlake2s.with_key(&[7; 32]);
        let multi = MultiKeyedMac::<1>::new([&keyed]);
        assert_eq!(multi.mac([b"m"])[0], keyed.mac(b"m"));
    }
}
