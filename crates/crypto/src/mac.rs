//! Message authentication codes used for ERASMUS measurements.
//!
//! The paper evaluates three MAC constructions: HMAC-SHA1 (size comparison
//! only), HMAC-SHA256 and keyed BLAKE2s. [`MacAlgorithm`] lets every prover,
//! verifier and benchmark in the workspace select among them with a single
//! value, mirroring the columns of Table 1 and the curves of Figures 6/8.
//!
//! [`KeyedMac`] is the precomputed form: the HMAC ipad/opad blocks (or the
//! BLAKE2s key block) are absorbed exactly once per device, and every
//! subsequent tag clones the cheap fixed-size midstate. This matches how the
//! paper's SMART+/HYDRA-style implementations hold `K`, and it is what the
//! prover/verifier hot paths use.

use std::fmt;
use std::str::FromStr;

use crate::blake2s::Blake2s;
use crate::ct::constant_time_eq;
use crate::digest::Digest;
use crate::hmac::{HmacKey, HmacSha1, HmacSha256};
use crate::sha1::Sha1;
use crate::sha256::Sha256;

/// Largest tag any supported algorithm produces, in bytes.
pub const MAX_TAG_LEN: usize = 32;

/// A computed MAC tag, stored inline (no heap allocation).
///
/// Wrapping the raw bytes in a newtype keeps tag handling explicit in
/// protocol code and lets the verifier insist on constant-time comparison.
/// The unused suffix of the inline array is always zero, so the derived
/// equality and hash are well-defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacTag {
    bytes: [u8; MAX_TAG_LEN],
    len: u8,
}

impl MacTag {
    /// Wraps raw tag bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than [`MAX_TAG_LEN`]; no supported
    /// algorithm produces such a tag.
    pub fn new(bytes: impl AsRef<[u8]>) -> Self {
        let bytes = bytes.as_ref();
        assert!(
            bytes.len() <= MAX_TAG_LEN,
            "tag of {} bytes exceeds the {MAX_TAG_LEN}-byte maximum",
            bytes.len()
        );
        let mut inline = [0u8; MAX_TAG_LEN];
        inline[..bytes.len()].copy_from_slice(bytes);
        Self {
            bytes: inline,
            len: bytes.len() as u8,
        }
    }

    /// Tag length in bytes.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// Whether the tag is empty (only possible for corrupted storage).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Borrows the raw tag bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Copies the tag into a freshly allocated vector (convenience for
    /// serialization code; the tag itself lives on the stack).
    pub fn into_bytes(self) -> Vec<u8> {
        self.as_bytes().to_vec()
    }

    /// Constant-time equality with another candidate tag.
    pub fn ct_eq(&self, other: &MacTag) -> bool {
        constant_time_eq(self.as_bytes(), other.as_bytes())
    }
}

impl AsRef<[u8]> for MacTag {
    fn as_ref(&self) -> &[u8] {
        self.as_bytes()
    }
}

impl From<[u8; 32]> for MacTag {
    fn from(bytes: [u8; 32]) -> Self {
        Self { bytes, len: 32 }
    }
}

impl From<[u8; 20]> for MacTag {
    fn from(bytes: [u8; 20]) -> Self {
        Self::new(bytes)
    }
}

impl From<Vec<u8>> for MacTag {
    fn from(bytes: Vec<u8>) -> Self {
        Self::new(bytes)
    }
}

impl From<&[u8]> for MacTag {
    fn from(bytes: &[u8]) -> Self {
        Self::new(bytes)
    }
}

impl fmt::Display for MacTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for byte in self.as_bytes() {
            write!(f, "{byte:02x}")?;
        }
        Ok(())
    }
}

/// Object-safe MAC abstraction.
///
/// Provers hold a `Box<dyn Mac>` chosen at deployment time; this mirrors the
/// paper's deployments, which fix one MAC per ROM image.
pub trait Mac: Send + Sync {
    /// Computes the tag of `message` under `key`.
    fn compute(&self, key: &[u8], message: &[u8]) -> MacTag;

    /// Verifies a tag in constant time.
    fn verify(&self, key: &[u8], message: &[u8], tag: &MacTag) -> bool {
        self.compute(key, message).ct_eq(tag)
    }

    /// Tag length in bytes.
    fn tag_len(&self) -> usize;

    /// The algorithm identifier.
    fn algorithm(&self) -> MacAlgorithm;
}

/// The three MAC constructions evaluated by the paper.
///
/// # Example
///
/// ```
/// use erasmus_crypto::MacAlgorithm;
///
/// let key = [7u8; 32];
/// for alg in MacAlgorithm::ALL {
///     let tag = alg.mac(&key, b"measurement");
///     assert!(alg.verify(&key, b"measurement", &tag));
///     assert!(!alg.verify(&key, b"tampered", &tag));
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MacAlgorithm {
    /// HMAC-SHA1 — reproduced only for the Table 1 size comparison.
    HmacSha1,
    /// HMAC-SHA256 — the paper's reference MAC.
    HmacSha256,
    /// Keyed BLAKE2s.
    KeyedBlake2s,
}

impl MacAlgorithm {
    /// All algorithms, in the order used by Table 1 of the paper.
    pub const ALL: [MacAlgorithm; 3] = [
        MacAlgorithm::HmacSha1,
        MacAlgorithm::HmacSha256,
        MacAlgorithm::KeyedBlake2s,
    ];

    /// Precomputes the keyed state for this algorithm — the once-per-device
    /// key-schedule derivation. Use the returned [`KeyedMac`] on hot paths.
    pub fn with_key(self, key: &[u8]) -> KeyedMac {
        match self {
            MacAlgorithm::HmacSha1 => KeyedMac::HmacSha1(HmacKey::new(key)),
            MacAlgorithm::HmacSha256 => KeyedMac::HmacSha256(HmacKey::new(key)),
            MacAlgorithm::KeyedBlake2s => {
                KeyedMac::KeyedBlake2s(Blake2s::new_keyed(key, MAX_TAG_LEN))
            }
        }
    }

    /// Computes a tag over `message` under `key`, deriving the key schedule
    /// from scratch (the one-shot path; prefer [`MacAlgorithm::with_key`]
    /// when the same key authenticates more than one message).
    pub fn mac(self, key: &[u8], message: &[u8]) -> MacTag {
        match self {
            MacAlgorithm::HmacSha1 => MacTag::from(HmacSha1::mac(key, message)),
            MacAlgorithm::HmacSha256 => MacTag::from(HmacSha256::mac(key, message)),
            MacAlgorithm::KeyedBlake2s => MacTag::from(Blake2s::keyed_mac(key, message)),
        }
    }

    /// Verifies `tag` in constant time.
    pub fn verify(self, key: &[u8], message: &[u8], tag: &MacTag) -> bool {
        self.mac(key, message).ct_eq(tag)
    }

    /// Tag length in bytes.
    pub fn tag_len(self) -> usize {
        match self {
            MacAlgorithm::HmacSha1 => 20,
            MacAlgorithm::HmacSha256 => 32,
            MacAlgorithm::KeyedBlake2s => 32,
        }
    }

    /// Human-readable name matching the paper's tables.
    pub fn paper_name(self) -> &'static str {
        match self {
            MacAlgorithm::HmacSha1 => "HMAC-SHA1",
            MacAlgorithm::HmacSha256 => "HMAC-SHA256",
            MacAlgorithm::KeyedBlake2s => "Keyed BLAKE2S",
        }
    }
}

impl fmt::Display for MacAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// A MAC with its key schedule already derived.
///
/// For HMAC this holds the ipad/opad midstates (each one compression ahead);
/// for keyed BLAKE2s it holds the parameterized state with the key block
/// absorbed. Producing a tag clones the fixed-size state and runs only the
/// per-message compressions — no allocation, no re-keying.
///
/// # Example
///
/// ```
/// use erasmus_crypto::MacAlgorithm;
///
/// let key = [7u8; 32];
/// let keyed = MacAlgorithm::HmacSha256.with_key(&key);
/// let tag = keyed.mac(b"measurement");
/// assert_eq!(tag, MacAlgorithm::HmacSha256.mac(&key, b"measurement"));
/// assert!(keyed.verify(b"measurement", &tag));
/// ```
#[derive(Clone)]
pub enum KeyedMac {
    /// Precomputed HMAC-SHA1 midstates.
    HmacSha1(HmacKey<Sha1>),
    /// Precomputed HMAC-SHA256 midstates.
    HmacSha256(HmacKey<Sha256>),
    /// Keyed BLAKE2s state with the key block absorbed.
    KeyedBlake2s(Blake2s),
}

impl KeyedMac {
    /// Computes the tag of `message` from the precomputed state.
    pub fn mac(&self, message: &[u8]) -> MacTag {
        match self {
            KeyedMac::HmacSha1(key) => MacTag::from(key.mac(message)),
            KeyedMac::HmacSha256(key) => MacTag::from(key.mac(message)),
            KeyedMac::KeyedBlake2s(state) => {
                let mut mac = state.clone();
                mac.update(message);
                MacTag::from(mac.finalize())
            }
        }
    }

    /// Verifies `tag` against `message` in constant time.
    pub fn verify(&self, message: &[u8], tag: &MacTag) -> bool {
        self.mac(message).ct_eq(tag)
    }

    /// The algorithm this keyed state was derived for.
    pub fn algorithm(&self) -> MacAlgorithm {
        match self {
            KeyedMac::HmacSha1(_) => MacAlgorithm::HmacSha1,
            KeyedMac::HmacSha256(_) => MacAlgorithm::HmacSha256,
            KeyedMac::KeyedBlake2s(_) => MacAlgorithm::KeyedBlake2s,
        }
    }

    /// Tag length in bytes.
    pub fn tag_len(&self) -> usize {
        self.algorithm().tag_len()
    }
}

impl fmt::Debug for KeyedMac {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // The midstates are key-derived; never print them.
        write!(f, "KeyedMac({}, ..redacted..)", self.algorithm())
    }
}

/// Error returned when parsing a [`MacAlgorithm`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacAlgorithmError {
    input: String,
}

impl fmt::Display for ParseMacAlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown MAC algorithm `{}`; expected one of hmac-sha1, hmac-sha256, blake2s",
            self.input
        )
    }
}

impl std::error::Error for ParseMacAlgorithmError {}

impl FromStr for MacAlgorithm {
    type Err = ParseMacAlgorithmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "hmac-sha1" | "hmacsha1" | "sha1" => Ok(MacAlgorithm::HmacSha1),
            "hmac-sha256" | "hmacsha256" | "sha256" => Ok(MacAlgorithm::HmacSha256),
            "blake2s" | "keyed-blake2s" | "keyedblake2s" => Ok(MacAlgorithm::KeyedBlake2s),
            _ => Err(ParseMacAlgorithmError {
                input: s.to_owned(),
            }),
        }
    }
}

impl Mac for MacAlgorithm {
    fn compute(&self, key: &[u8], message: &[u8]) -> MacTag {
        (*self).mac(key, message)
    }

    fn tag_len(&self) -> usize {
        (*self).tag_len()
    }

    fn algorithm(&self) -> MacAlgorithm {
        *self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip_all_algorithms() {
        let key = [0xa5u8; 32];
        for alg in MacAlgorithm::ALL {
            let tag = alg.mac(&key, b"hello");
            assert_eq!(tag.len(), alg.tag_len());
            assert!(alg.verify(&key, b"hello", &tag), "{alg}");
            assert!(!alg.verify(&key, b"hellO", &tag), "{alg}");
        }
    }

    #[test]
    fn keyed_state_matches_oneshot_for_all_algorithms() {
        let key = [0x5au8; 32];
        for alg in MacAlgorithm::ALL {
            let keyed = alg.with_key(&key);
            assert_eq!(keyed.algorithm(), alg);
            assert_eq!(keyed.tag_len(), alg.tag_len());
            for message in [&b""[..], b"m", &[0xcdu8; 129]] {
                let precomputed = keyed.mac(message);
                assert_eq!(precomputed, alg.mac(&key, message), "{alg}");
                assert!(keyed.verify(message, &precomputed), "{alg}");
                assert!(!keyed.verify(b"other", &precomputed), "{alg}");
            }
        }
    }

    #[test]
    fn keyed_mac_debug_is_redacted() {
        let keyed = MacAlgorithm::HmacSha256.with_key(&[0xffu8; 32]);
        let text = format!("{keyed:?}");
        assert!(text.contains("redacted"), "{text}");
        assert!(!text.contains("ff"), "{text}");
    }

    #[test]
    fn algorithms_produce_distinct_tags() {
        let key = [1u8; 32];
        let sha256 = MacAlgorithm::HmacSha256.mac(&key, b"m");
        let blake = MacAlgorithm::KeyedBlake2s.mac(&key, b"m");
        assert_ne!(sha256, blake);
    }

    #[test]
    fn parse_from_str() {
        assert_eq!(
            "hmac-sha256".parse::<MacAlgorithm>(),
            Ok(MacAlgorithm::HmacSha256)
        );
        assert_eq!(
            "BLAKE2S".parse::<MacAlgorithm>(),
            Ok(MacAlgorithm::KeyedBlake2s)
        );
        assert_eq!("sha1".parse::<MacAlgorithm>(), Ok(MacAlgorithm::HmacSha1));
        assert!("md5".parse::<MacAlgorithm>().is_err());
        let err = "md5".parse::<MacAlgorithm>().unwrap_err();
        assert!(err.to_string().contains("md5"));
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(MacAlgorithm::HmacSha256.to_string(), "HMAC-SHA256");
        assert_eq!(MacAlgorithm::KeyedBlake2s.to_string(), "Keyed BLAKE2S");
        assert_eq!(MacAlgorithm::HmacSha1.to_string(), "HMAC-SHA1");
    }

    #[test]
    fn mac_tag_display_is_hex() {
        let tag = MacTag::new([0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(tag.to_string(), "deadbeef");
        assert_eq!(tag.len(), 4);
        assert!(!tag.is_empty());
    }

    #[test]
    fn mac_tag_conversions() {
        let bytes = vec![1u8, 2, 3];
        let tag = MacTag::from(bytes.clone());
        assert_eq!(tag.as_bytes(), &bytes[..]);
        assert_eq!(tag.as_ref(), &bytes[..]);
        assert_eq!(tag.into_bytes(), bytes);
        assert!(tag.ct_eq(&MacTag::new(bytes)));
    }

    #[test]
    fn short_tags_of_different_length_are_unequal() {
        // The inline array zero-pads, but the length is part of identity.
        assert_ne!(MacTag::new([0u8; 4]), MacTag::new([0u8; 5]));
        assert_eq!(MacTag::new([]).len(), 0);
        assert!(MacTag::new([]).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn oversized_tag_panics() {
        let _ = MacTag::new([0u8; 33]);
    }

    #[test]
    fn dyn_mac_object_safety() {
        let mac: Box<dyn Mac> = Box::new(MacAlgorithm::HmacSha256);
        let tag = mac.compute(b"key", b"msg");
        assert!(mac.verify(b"key", b"msg", &tag));
        assert_eq!(mac.algorithm(), MacAlgorithm::HmacSha256);
        assert_eq!(mac.tag_len(), 32);
    }
}
