//! Message authentication codes used for ERASMUS measurements.
//!
//! The paper evaluates three MAC constructions: HMAC-SHA1 (size comparison
//! only), HMAC-SHA256 and keyed BLAKE2s. [`MacAlgorithm`] lets every prover,
//! verifier and benchmark in the workspace select among them with a single
//! value, mirroring the columns of Table 1 and the curves of Figures 6/8.

use std::fmt;
use std::str::FromStr;

use crate::blake2s::Blake2s;
use crate::ct::constant_time_eq;
use crate::hmac::{HmacSha1, HmacSha256};

/// A computed MAC tag.
///
/// Wrapping the raw bytes in a newtype keeps tag handling explicit in
/// protocol code and lets the verifier insist on constant-time comparison.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MacTag(Vec<u8>);

impl MacTag {
    /// Wraps raw tag bytes.
    pub fn new(bytes: Vec<u8>) -> Self {
        Self(bytes)
    }

    /// Tag length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the tag is empty (only possible for corrupted storage).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Borrows the raw tag bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// Consumes the tag and returns the raw bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.0
    }

    /// Constant-time equality with another candidate tag.
    pub fn ct_eq(&self, other: &MacTag) -> bool {
        constant_time_eq(&self.0, &other.0)
    }
}

impl AsRef<[u8]> for MacTag {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for MacTag {
    fn from(bytes: Vec<u8>) -> Self {
        Self(bytes)
    }
}

impl fmt::Display for MacTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for byte in &self.0 {
            write!(f, "{byte:02x}")?;
        }
        Ok(())
    }
}

/// Object-safe MAC abstraction.
///
/// Provers hold a `Box<dyn Mac>` chosen at deployment time; this mirrors the
/// paper's deployments, which fix one MAC per ROM image.
pub trait Mac: Send + Sync {
    /// Computes the tag of `message` under `key`.
    fn compute(&self, key: &[u8], message: &[u8]) -> MacTag;

    /// Verifies a tag in constant time.
    fn verify(&self, key: &[u8], message: &[u8], tag: &MacTag) -> bool {
        self.compute(key, message).ct_eq(tag)
    }

    /// Tag length in bytes.
    fn tag_len(&self) -> usize;

    /// The algorithm identifier.
    fn algorithm(&self) -> MacAlgorithm;
}

/// The three MAC constructions evaluated by the paper.
///
/// # Example
///
/// ```
/// use erasmus_crypto::MacAlgorithm;
///
/// let key = [7u8; 32];
/// for alg in MacAlgorithm::ALL {
///     let tag = alg.mac(&key, b"measurement");
///     assert!(alg.verify(&key, b"measurement", &tag));
///     assert!(!alg.verify(&key, b"tampered", &tag));
/// }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MacAlgorithm {
    /// HMAC-SHA1 — reproduced only for the Table 1 size comparison.
    HmacSha1,
    /// HMAC-SHA256 — the paper's reference MAC.
    HmacSha256,
    /// Keyed BLAKE2s.
    KeyedBlake2s,
}

impl MacAlgorithm {
    /// All algorithms, in the order used by Table 1 of the paper.
    pub const ALL: [MacAlgorithm; 3] = [
        MacAlgorithm::HmacSha1,
        MacAlgorithm::HmacSha256,
        MacAlgorithm::KeyedBlake2s,
    ];

    /// Computes a tag over `message` under `key`.
    pub fn mac(self, key: &[u8], message: &[u8]) -> MacTag {
        match self {
            MacAlgorithm::HmacSha1 => MacTag::new(HmacSha1::mac(key, message)),
            MacAlgorithm::HmacSha256 => MacTag::new(HmacSha256::mac(key, message)),
            MacAlgorithm::KeyedBlake2s => MacTag::new(Blake2s::keyed_mac(key, message)),
        }
    }

    /// Verifies `tag` in constant time.
    pub fn verify(self, key: &[u8], message: &[u8], tag: &MacTag) -> bool {
        self.mac(key, message).ct_eq(tag)
    }

    /// Tag length in bytes.
    pub fn tag_len(self) -> usize {
        match self {
            MacAlgorithm::HmacSha1 => 20,
            MacAlgorithm::HmacSha256 => 32,
            MacAlgorithm::KeyedBlake2s => 32,
        }
    }

    /// Human-readable name matching the paper's tables.
    pub fn paper_name(self) -> &'static str {
        match self {
            MacAlgorithm::HmacSha1 => "HMAC-SHA1",
            MacAlgorithm::HmacSha256 => "HMAC-SHA256",
            MacAlgorithm::KeyedBlake2s => "Keyed BLAKE2S",
        }
    }
}

impl fmt::Display for MacAlgorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.paper_name())
    }
}

/// Error returned when parsing a [`MacAlgorithm`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMacAlgorithmError {
    input: String,
}

impl fmt::Display for ParseMacAlgorithmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown MAC algorithm `{}`; expected one of hmac-sha1, hmac-sha256, blake2s",
            self.input
        )
    }
}

impl std::error::Error for ParseMacAlgorithmError {}

impl FromStr for MacAlgorithm {
    type Err = ParseMacAlgorithmError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "hmac-sha1" | "hmacsha1" | "sha1" => Ok(MacAlgorithm::HmacSha1),
            "hmac-sha256" | "hmacsha256" | "sha256" => Ok(MacAlgorithm::HmacSha256),
            "blake2s" | "keyed-blake2s" | "keyedblake2s" => Ok(MacAlgorithm::KeyedBlake2s),
            _ => Err(ParseMacAlgorithmError {
                input: s.to_owned(),
            }),
        }
    }
}

impl Mac for MacAlgorithm {
    fn compute(&self, key: &[u8], message: &[u8]) -> MacTag {
        (*self).mac(key, message)
    }

    fn tag_len(&self) -> usize {
        (*self).tag_len()
    }

    fn algorithm(&self) -> MacAlgorithm {
        *self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tag_roundtrip_all_algorithms() {
        let key = [0xa5u8; 32];
        for alg in MacAlgorithm::ALL {
            let tag = alg.mac(&key, b"hello");
            assert_eq!(tag.len(), alg.tag_len());
            assert!(alg.verify(&key, b"hello", &tag), "{alg}");
            assert!(!alg.verify(&key, b"hellO", &tag), "{alg}");
        }
    }

    #[test]
    fn algorithms_produce_distinct_tags() {
        let key = [1u8; 32];
        let sha256 = MacAlgorithm::HmacSha256.mac(&key, b"m");
        let blake = MacAlgorithm::KeyedBlake2s.mac(&key, b"m");
        assert_ne!(sha256, blake);
    }

    #[test]
    fn parse_from_str() {
        assert_eq!(
            "hmac-sha256".parse::<MacAlgorithm>(),
            Ok(MacAlgorithm::HmacSha256)
        );
        assert_eq!(
            "BLAKE2S".parse::<MacAlgorithm>(),
            Ok(MacAlgorithm::KeyedBlake2s)
        );
        assert_eq!("sha1".parse::<MacAlgorithm>(), Ok(MacAlgorithm::HmacSha1));
        assert!("md5".parse::<MacAlgorithm>().is_err());
        let err = "md5".parse::<MacAlgorithm>().unwrap_err();
        assert!(err.to_string().contains("md5"));
    }

    #[test]
    fn display_matches_paper_names() {
        assert_eq!(MacAlgorithm::HmacSha256.to_string(), "HMAC-SHA256");
        assert_eq!(MacAlgorithm::KeyedBlake2s.to_string(), "Keyed BLAKE2S");
        assert_eq!(MacAlgorithm::HmacSha1.to_string(), "HMAC-SHA1");
    }

    #[test]
    fn mac_tag_display_is_hex() {
        let tag = MacTag::new(vec![0xde, 0xad, 0xbe, 0xef]);
        assert_eq!(tag.to_string(), "deadbeef");
        assert_eq!(tag.len(), 4);
        assert!(!tag.is_empty());
    }

    #[test]
    fn mac_tag_conversions() {
        let bytes = vec![1u8, 2, 3];
        let tag = MacTag::from(bytes.clone());
        assert_eq!(tag.as_bytes(), &bytes[..]);
        assert_eq!(tag.as_ref(), &bytes[..]);
        assert_eq!(tag.clone().into_bytes(), bytes);
        assert!(tag.ct_eq(&MacTag::new(bytes)));
    }

    #[test]
    fn dyn_mac_object_safety() {
        let mac: Box<dyn Mac> = Box::new(MacAlgorithm::HmacSha256);
        let tag = mac.compute(b"key", b"msg");
        assert!(mac.verify(b"key", b"msg", &tag));
        assert_eq!(mac.algorithm(), MacAlgorithm::HmacSha256);
        assert_eq!(mac.tag_len(), 32);
    }
}
