//! Constant-time comparison helpers.
//!
//! Verifier-side MAC checks must not leak how many prefix bytes of a
//! candidate tag were correct, otherwise a network attacker could forge
//! measurements byte by byte. Every verification path in the workspace goes
//! through [`constant_time_eq`].

/// Compares two byte slices in time independent of their contents.
///
/// Returns `false` immediately when the lengths differ (the length of a MAC
/// tag is public), and otherwise accumulates the XOR of every byte pair so
/// the running time does not depend on where the first mismatch occurs.
///
/// # Example
///
/// ```
/// use erasmus_crypto::constant_time_eq;
///
/// assert!(constant_time_eq(b"same", b"same"));
/// assert!(!constant_time_eq(b"same", b"diff"));
/// assert!(!constant_time_eq(b"short", b"longer"));
/// ```
pub fn constant_time_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_slices() {
        assert!(constant_time_eq(b"", b""));
        assert!(constant_time_eq(b"a", b"a"));
        assert!(constant_time_eq(&[0u8; 64], &[0u8; 64]));
    }

    #[test]
    fn unequal_slices() {
        assert!(!constant_time_eq(b"a", b"b"));
        assert!(!constant_time_eq(b"aa", b"ab"));
        assert!(!constant_time_eq(b"ba", b"aa"));
    }

    #[test]
    fn length_mismatch() {
        assert!(!constant_time_eq(b"abc", b"abcd"));
        assert!(!constant_time_eq(b"abcd", b"abc"));
        assert!(!constant_time_eq(b"", b"a"));
    }

    #[test]
    fn single_bit_differences_detected() {
        let base = [0x5au8; 32];
        for byte in 0..32 {
            for bit in 0..8 {
                let mut other = base;
                other[byte] ^= 1 << bit;
                assert!(!constant_time_eq(&base, &other));
            }
        }
    }
}
