//! SHA-256 as specified in FIPS 180-2.
//!
//! The paper's reference MAC for both SMART+ and HYDRA implementations is
//! HMAC-SHA256, so SHA-256 is the default hash used to compute `H(mem_t)`
//! throughout the workspace.

use crate::digest::Digest;

/// Round constants (first 32 bits of the fractional parts of the cube roots
/// of the first 64 primes).
pub(crate) const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

/// Initial hash state (first 32 bits of the fractional parts of the square
/// roots of the first 8 primes).
pub(crate) const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
///
/// # Example
///
/// ```
/// use erasmus_crypto::{Digest, Sha256};
///
/// let digest = Sha256::digest(b"abc");
/// assert_eq!(
///     hex(&digest),
///     "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
/// );
/// # fn hex(bytes: &[u8]) -> String {
/// #     bytes.iter().map(|b| format!("{b:02x}")).collect()
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Sha256 {
    state: [u32; 8],
    /// Buffered partial block.
    buffer: [u8; 64],
    buffer_len: usize,
    /// Total message length in bytes.
    total_len: u64,
}

impl Sha256 {
    /// Creates a fresh SHA-256 state.
    pub fn new() -> Self {
        Self {
            state: H0,
            buffer: [0u8; 64],
            buffer_len: 0,
            total_len: 0,
        }
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }

        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.state;

        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let temp1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let temp2 = s0.wrapping_add(maj);

            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(temp1);
            d = c;
            c = b;
            b = a;
            a = temp1.wrapping_add(temp2);
        }

        self.state[0] = self.state[0].wrapping_add(a);
        self.state[1] = self.state[1].wrapping_add(b);
        self.state[2] = self.state[2].wrapping_add(c);
        self.state[3] = self.state[3].wrapping_add(d);
        self.state[4] = self.state[4].wrapping_add(e);
        self.state[5] = self.state[5].wrapping_add(f);
        self.state[6] = self.state[6].wrapping_add(g);
        self.state[7] = self.state[7].wrapping_add(h);
    }

    /// Lane view used by the multi-lane cores to transpose midstates:
    /// `(state words, absorbed bytes, buffered bytes)`.
    pub(crate) fn lane_parts(&self) -> ([u32; 8], u64, usize) {
        (self.state, self.total_len, self.buffer_len)
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Digest for Sha256 {
    const OUTPUT_SIZE: usize = 32;
    const BLOCK_SIZE: usize = 64;

    type Output = [u8; 32];

    fn new() -> Self {
        Sha256::new()
    }

    fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);

        if self.buffer_len > 0 {
            let need = 64 - self.buffer_len;
            let take = need.min(data.len());
            self.buffer[self.buffer_len..self.buffer_len + take].copy_from_slice(&data[..take]);
            self.buffer_len += take;
            data = &data[take..];
            if self.buffer_len == 64 {
                let block = self.buffer;
                self.compress(&block);
                self.buffer_len = 0;
            }
        }

        // Aligned full blocks compress straight from the input slice; the
        // copy through `self.buffer` is only for partial blocks.
        let mut chunks = data.chunks_exact(64);
        for chunk in &mut chunks {
            self.compress(chunk.try_into().expect("64-byte chunk"));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            self.buffer[..rem.len()].copy_from_slice(rem);
            self.buffer_len = rem.len();
        }
    }

    fn finalize(mut self) -> [u8; 32] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Append 0x80, then zeros, then the 64-bit big-endian length — at
        // most 72 bytes, built on the stack.
        let mut padding = [0u8; 72];
        padding[0] = 0x80;
        let msg_len = (self.total_len % 64) as usize;
        let zero_count = if msg_len < 56 {
            55 - msg_len
        } else {
            119 - msg_len
        };
        let pad_len = 1 + zero_count + 8;
        padding[1 + zero_count..pad_len].copy_from_slice(&bit_len.to_be_bytes());

        // `update` adjusts total_len but padding length no longer matters.
        self.update(&padding[..pad_len]);
        debug_assert_eq!(self.buffer_len, 0);

        let mut out = [0u8; 32];
        for (chunk, word) in out.chunks_exact_mut(4).zip(self.state) {
            chunk.copy_from_slice(&word.to_be_bytes());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn empty_message() {
        assert_eq!(
            hex(&Sha256::digest(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn abc() {
        assert_eq!(
            hex(&Sha256::digest(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn two_block_message() {
        assert_eq!(
            hex(&Sha256::digest(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let msg = vec![b'a'; 1_000_000];
        assert_eq!(
            hex(&Sha256::digest(&msg)),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    #[test]
    fn long_multiblock_message() {
        // 896-bit test vector from FIPS 180-2.
        let msg = b"abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno\
                    ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu";
        assert_eq!(
            hex(&Sha256::digest(msg)),
            "cf5b16a778af8380036ce59e7b0492370b249b11e8f07a51afac45037afee9d1"
        );
    }

    #[test]
    fn incremental_matches_oneshot() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        for split in [0usize, 1, 63, 64, 65, 127, 128, 500, 999, 1000] {
            let mut hasher = Sha256::new();
            hasher.update(&data[..split]);
            hasher.update(&data[split..]);
            assert_eq!(hasher.finalize(), Sha256::digest(&data), "split at {split}");
        }
    }

    #[test]
    fn byte_at_a_time_matches_oneshot() {
        let data: Vec<u8> = (0..300u32).map(|i| (i * 7 % 256) as u8).collect();
        let mut hasher = Sha256::new();
        for byte in &data {
            hasher.update(std::slice::from_ref(byte));
        }
        assert_eq!(hasher.finalize(), Sha256::digest(&data));
    }

    #[test]
    fn aligned_fast_path_is_stream_identical() {
        // Regression for the direct-compress fast path: full blocks arriving
        // on an empty buffer bypass the copy, and the stream must stay
        // byte-identical to any other split of the same data.
        let data: Vec<u8> = (0..512u32).map(|i| (i * 13 % 251) as u8).collect();
        let oneshot = Sha256::digest(&data);

        // Pure aligned updates (fast path only).
        let mut aligned = Sha256::new();
        for chunk in data.chunks(64) {
            aligned.update(chunk);
        }
        assert_eq!(aligned.finalize(), oneshot);

        // Partial fill, buffer drain, then the fast path mid-update, then a
        // trailing partial block again.
        let mut mixed = Sha256::new();
        mixed.update(&data[..10]); // partial: buffered
        mixed.update(&data[10..202]); // drains buffer, then 2 aligned blocks
        mixed.update(&data[202..512]); // drains again, aligned tail
        assert_eq!(mixed.finalize(), oneshot);

        // Multi-block single update on an aligned boundary.
        let mut bulk = Sha256::new();
        bulk.update(&data[..128]);
        bulk.update(&data[128..]);
        assert_eq!(bulk.finalize(), oneshot);
    }

    #[test]
    fn output_and_block_size_constants() {
        assert_eq!(<Sha256 as Digest>::OUTPUT_SIZE, 32);
        assert_eq!(<Sha256 as Digest>::BLOCK_SIZE, 64);
        assert_eq!(Sha256::digest(b"x").len(), 32);
    }

    #[test]
    fn default_equals_new() {
        let a = Sha256::default();
        let b = Sha256::new();
        assert_eq!(a.finalize(), b.finalize());
    }
}
