//! Hierarchical aggregation of per-device attestation state (SANA /
//! slimIoT style).
//!
//! A million-device fleet cannot funnel per-device reports into one root
//! verifier. Instead, sub-verifiers each summarise a subtree of devices —
//! device count, healthy count, lifetime entries and one 32-byte digest
//! folded over the subtree's hash-chain heads — and the root folds those
//! fixed-size aggregates. The root digest is a pure function of the
//! per-device head digests in device-id order, so it is invariant to how
//! the fleet was sharded, merged or snapshot-restored, and it changes if
//! any single device timeline is tampered with.
//!
//! The tree is a balanced bottom-up k-ary fold: level 0 holds one leaf
//! aggregate per device, each level above folds up to `fanout` children
//! into one node, and the last level is the root. Aggregation work is
//! O(devices) with depth O(log_fanout devices).

use erasmus_core::{DeviceId, VerifierHub};
use erasmus_crypto::{Digest, Sha256};

/// Domain-separation prefix for leaf digests.
const LEAF_TAG: u8 = 0x00;
/// Domain-separation prefix for internal-node digests.
const NODE_TAG: u8 = 0x01;

/// Per-device input to the aggregation tree: the device's identity, its
/// hash-chain head and the health/volume summary a sub-verifier reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AggregationLeaf {
    /// The device this leaf summarises.
    pub device: DeviceId,
    /// The device's hash-chain head digest (chain folded over the retained
    /// window).
    pub head: [u8; 32],
    /// Whether the device has never shown a compromised or forged
    /// measurement.
    pub healthy: bool,
    /// Lifetime history entries ingested for the device.
    pub entries: u64,
}

impl AggregationLeaf {
    fn aggregate(&self) -> SubtreeAggregate {
        let mut hasher = Sha256::new();
        hasher.update(&[LEAF_TAG]);
        hasher.update(&self.device.value().to_be_bytes());
        hasher.update(&self.head);
        SubtreeAggregate {
            devices: 1,
            healthy_devices: u64::from(self.healthy),
            entries: self.entries,
            digest: hasher.finalize(),
        }
    }
}

/// Fixed-size summary of a subtree: what a sub-verifier hands upward
/// instead of its devices' individual reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SubtreeAggregate {
    /// Devices in the subtree.
    pub devices: u64,
    /// Devices in the subtree with no compromise evidence.
    pub healthy_devices: u64,
    /// Lifetime history entries across the subtree.
    pub entries: u64,
    /// Digest folded over the subtree's children (leaf digests at the
    /// bottom, child aggregates above).
    pub digest: [u8; 32],
}

impl SubtreeAggregate {
    fn fold(children: &[SubtreeAggregate]) -> SubtreeAggregate {
        let mut hasher = Sha256::new();
        hasher.update(&[NODE_TAG]);
        let mut devices = 0u64;
        let mut healthy_devices = 0u64;
        let mut entries = 0u64;
        for child in children {
            hasher.update(&child.digest);
            devices += child.devices;
            healthy_devices += child.healthy_devices;
            entries += child.entries;
        }
        SubtreeAggregate {
            devices,
            healthy_devices,
            entries,
            digest: hasher.finalize(),
        }
    }
}

/// Shape statistics for a built [`AggregationTree`], reported by perfbench.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AggregationStats {
    /// Leaf count (one per device).
    pub leaves: usize,
    /// Total nodes across all levels, leaves included.
    pub nodes: usize,
    /// Number of levels, leaves included (0 for an empty tree).
    pub depth: usize,
    /// Maximum children folded into one node.
    pub fanout: usize,
}

/// A balanced k-ary aggregation tree over a fleet's per-device state.
#[derive(Debug, Clone)]
pub struct AggregationTree {
    fanout: usize,
    /// `levels[0]` holds the leaf aggregates; each following level folds
    /// the one below; the last level holds exactly the root.
    levels: Vec<Vec<SubtreeAggregate>>,
}

impl AggregationTree {
    /// Builds the tree from explicit leaves, in the order given. A fanout
    /// below 2 is clamped to 2 (a unary fold would never terminate the
    /// level reduction).
    pub fn from_leaves(leaves: &[AggregationLeaf], fanout: usize) -> Self {
        let fanout = fanout.max(2);
        let mut levels = Vec::new();
        if leaves.is_empty() {
            return Self { fanout, levels };
        }
        let mut level: Vec<SubtreeAggregate> =
            leaves.iter().map(AggregationLeaf::aggregate).collect();
        loop {
            let done = level.len() == 1;
            levels.push(level);
            if done {
                break;
            }
            let below = levels.last().expect("level just pushed");
            level = below.chunks(fanout).map(SubtreeAggregate::fold).collect();
        }
        Self { fanout, levels }
    }

    /// Builds the tree from a verifier hub: one leaf per tracked device, in
    /// device-id order, carrying the device's head digest, health flag
    /// (no compromise evidence ever) and lifetime entry count.
    pub fn from_hub(hub: &VerifierHub, fanout: usize) -> Self {
        let leaves: Vec<AggregationLeaf> = hub
            .histories()
            .map(|history| AggregationLeaf {
                device: history.device(),
                head: *history.head_digest(),
                healthy: history.first_compromise().is_none(),
                entries: history.len() as u64,
            })
            .collect();
        Self::from_leaves(&leaves, fanout)
    }

    /// The root aggregate, or `None` for an empty fleet.
    pub fn root(&self) -> Option<&SubtreeAggregate> {
        self.levels.last().and_then(|level| level.first())
    }

    /// The aggregates one level below the root — what each top-level
    /// sub-verifier reports. Empty for fleets small enough that the root
    /// folds leaves directly (or for an empty tree).
    pub fn sub_verifiers(&self) -> &[SubtreeAggregate] {
        if self.levels.len() < 2 {
            return &[];
        }
        &self.levels[self.levels.len() - 2]
    }

    /// Shape statistics for reporting.
    pub fn stats(&self) -> AggregationStats {
        AggregationStats {
            leaves: self.levels.first().map_or(0, Vec::len),
            nodes: self.levels.iter().map(Vec::len).sum(),
            depth: self.levels.len(),
            fanout: self.fanout,
        }
    }
}

/// Lowercase-hex rendering of an aggregate digest, for reports and logs.
pub fn digest_hex(digest: &[u8; 32]) -> String {
    let mut out = String::with_capacity(64);
    for byte in digest {
        out.push(char::from_digit(u32::from(byte >> 4), 16).expect("nibble < 16"));
        out.push(char::from_digit(u32::from(byte & 0xf), 16).expect("nibble < 16"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(id: u64, fill: u8, healthy: bool, entries: u64) -> AggregationLeaf {
        AggregationLeaf {
            device: DeviceId::new(id),
            head: [fill; 32],
            healthy,
            entries,
        }
    }

    #[test]
    fn balanced_shape_and_counts() {
        let leaves: Vec<AggregationLeaf> = (0..10)
            .map(|i| leaf(i, i as u8, i % 2 == 0, i + 1))
            .collect();
        let tree = AggregationTree::from_leaves(&leaves, 4);
        let stats = tree.stats();
        assert_eq!(stats.leaves, 10);
        assert_eq!(stats.depth, 3, "10 leaves / fanout 4 -> 10, 3, 1");
        assert_eq!(stats.nodes, 10 + 3 + 1);
        assert_eq!(stats.fanout, 4);
        assert_eq!(tree.sub_verifiers().len(), 3);
        let root = tree.root().expect("non-empty");
        assert_eq!(root.devices, 10);
        assert_eq!(root.healthy_devices, 5);
        assert_eq!(root.entries, (1..=10).sum::<u64>());
    }

    #[test]
    fn root_digest_detects_any_tampered_head() {
        let leaves: Vec<AggregationLeaf> = (0..7).map(|i| leaf(i, 0x40, true, 3)).collect();
        let baseline = AggregationTree::from_leaves(&leaves, 3);
        let again = AggregationTree::from_leaves(&leaves, 3);
        assert_eq!(baseline.root(), again.root(), "deterministic");

        for victim in 0..leaves.len() {
            let mut tampered = leaves.clone();
            tampered[victim].head[0] ^= 1;
            let tree = AggregationTree::from_leaves(&tampered, 3);
            assert_ne!(
                tree.root().unwrap().digest,
                baseline.root().unwrap().digest,
                "flipping device {victim}'s head must change the root"
            );
        }
    }

    #[test]
    fn empty_fleet_has_no_root() {
        let tree = AggregationTree::from_leaves(&[], 8);
        assert!(tree.root().is_none());
        assert!(tree.sub_verifiers().is_empty());
        assert_eq!(
            tree.stats(),
            AggregationStats {
                leaves: 0,
                nodes: 0,
                depth: 0,
                fanout: 8,
            }
        );
    }

    #[test]
    fn fanout_is_clamped_to_binary() {
        let leaves: Vec<AggregationLeaf> = (0..4).map(|i| leaf(i, 1, true, 1)).collect();
        let tree = AggregationTree::from_leaves(&leaves, 0);
        assert_eq!(tree.stats().fanout, 2);
        assert_eq!(tree.stats().depth, 3, "4 leaves -> 4, 2, 1");
    }

    #[test]
    fn digest_hex_is_lowercase_and_stable() {
        let mut digest = [0u8; 32];
        digest[0] = 0xab;
        digest[31] = 0x01;
        let hex = digest_hex(&digest);
        assert_eq!(hex.len(), 64);
        assert!(hex.starts_with("ab"));
        assert!(hex.ends_with("01"));
    }
}
