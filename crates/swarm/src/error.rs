//! Error type of the swarm substrate.

use std::fmt;

use erasmus_core::Error as CoreError;

/// Errors reported by swarm construction and the collective protocols.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SwarmError {
    /// A swarm was configured with no devices.
    EmptySwarm,
    /// A device index was out of range.
    UnknownDevice {
        /// The offending index.
        index: usize,
        /// The swarm size.
        size: usize,
    },
    /// The topology does not match the swarm size.
    TopologyMismatch {
        /// Nodes in the topology.
        topology_nodes: usize,
        /// Devices in the swarm.
        swarm_size: usize,
    },
    /// An error bubbled up from a single prover/verifier pair.
    Device {
        /// Which device failed.
        index: usize,
        /// The underlying error.
        source: CoreError,
    },
}

impl fmt::Display for SwarmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwarmError::EmptySwarm => f.write_str("swarm has no devices"),
            SwarmError::UnknownDevice { index, size } => {
                write!(f, "device index {index} out of range for swarm of {size}")
            }
            SwarmError::TopologyMismatch {
                topology_nodes,
                swarm_size,
            } => write!(
                f,
                "topology has {topology_nodes} nodes but the swarm has {swarm_size} devices"
            ),
            SwarmError::Device { index, source } => {
                write!(f, "device {index} failed: {source}")
            }
        }
    }
}

impl std::error::Error for SwarmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SwarmError::Device { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(SwarmError::EmptySwarm.to_string().contains("no devices"));
        assert!(SwarmError::UnknownDevice { index: 9, size: 4 }
            .to_string()
            .contains("9"));
        assert!(SwarmError::TopologyMismatch {
            topology_nodes: 3,
            swarm_size: 5
        }
        .to_string()
        .contains("3"));
        let device = SwarmError::Device {
            index: 2,
            source: CoreError::NoMeasurements,
        };
        assert!(device.to_string().contains("device 2"));
        assert!(std::error::Error::source(&device).is_some());
        assert!(std::error::Error::source(&SwarmError::EmptySwarm).is_none());
    }
}
