//! Swarm attestation on top of ERASMUS (Section 6 of the paper).
//!
//! Some deployments need to attest a *group* (swarm) of interconnected
//! devices. Prior swarm RA protocols — SEDA, SANA, LISA — perform on-demand
//! attestation across a spanning tree and therefore require the topology to
//! stay essentially static for the whole protocol run, whose duration is
//! dominated by per-device measurement computation. ERASMUS removes the
//! computation from the collection path, so a LISA-α-style relay collection
//! finishes quickly and tolerates high mobility.
//!
//! This crate provides:
//!
//! * [`Topology`] — the swarm connectivity graph (ring, grid, random
//!   connected, or hand-built).
//! * [`MobilityModel`] / [`MobilitySimulator`] — link churn applied while a
//!   protocol is in flight.
//! * [`Swarm`] — a fleet of ERASMUS provers plus per-device keys, with two
//!   collective protocols: [`Swarm::erasmus_collection`] (self-measurements
//!   relayed LISA-α style) and [`Swarm::on_demand_attestation`] (SEDA-style
//!   on-demand baseline).
//! * [`QosaLevel`] / [`SwarmReport`] — Quality of Swarm Attestation
//!   summaries, the spatial counterpart of QoA.
//! * [`StaggeredSchedule`] — measurement phase offsets that guarantee only a
//!   bounded fraction of the swarm is busy measuring at any instant
//!   (the availability argument at the end of Section 6).
//! * [`AggregationTree`] — SANA/slimIoT-style hierarchical aggregation of
//!   per-device hash-chain heads, so a root verifier folds fixed-size
//!   subtree aggregates instead of per-device reports.
//!
//! # Example
//!
//! ```
//! use erasmus_swarm::{Swarm, SwarmConfig, Topology};
//! use erasmus_sim::{SimDuration, SimTime};
//!
//! # fn main() -> Result<(), erasmus_swarm::SwarmError> {
//! let topology = Topology::ring(8);
//! let mut swarm = Swarm::new(SwarmConfig::default(), topology, b"fleet seed")?;
//! swarm.run_until(SimTime::from_secs(120))?;
//! let outcome = swarm.erasmus_collection(0, SimTime::from_secs(120), 4)?;
//! assert_eq!(outcome.coverage(), 1.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aggregate;
pub mod error;
pub mod mobility;
pub mod qosa;
pub mod schedule;
pub mod swarm;
pub mod topology;

pub use aggregate::{
    digest_hex, AggregationLeaf, AggregationStats, AggregationTree, SubtreeAggregate,
};
pub use error::SwarmError;
pub use mobility::{MobilityModel, MobilitySimulator};
pub use qosa::{DeviceStatus, QosaLevel, SwarmReport};
pub use schedule::StaggeredSchedule;
pub use swarm::{Swarm, SwarmCollectionOutcome, SwarmConfig, SwarmOnDemandOutcome};
pub use topology::Topology;
