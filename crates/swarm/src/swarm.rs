//! A swarm of ERASMUS provers and its collective attestation protocols.

use std::collections::BTreeSet;

use erasmus_core::{CollectionRequest, DeviceId, DeviceKey, Prover, ProverConfig, Verifier};
use erasmus_crypto::MacAlgorithm;
use erasmus_hw::DeviceProfile;
use erasmus_sim::{SimDuration, SimRng, SimTime};

use crate::error::SwarmError;
use crate::mobility::{MobilityModel, MobilitySimulator};
use crate::qosa::{DeviceStatus, SwarmReport};
use crate::topology::Topology;

/// Configuration shared by every device in the swarm.
#[derive(Debug, Clone)]
pub struct SwarmConfig {
    /// Device hardware profile (the same for every swarm member).
    pub profile: DeviceProfile,
    /// MAC algorithm used for measurements.
    pub mac_algorithm: MacAlgorithm,
    /// Measurement interval `T_M`.
    pub measurement_interval: SimDuration,
    /// Rolling-buffer slots per device.
    pub buffer_slots: usize,
    /// Per-hop relay latency of the collection protocol (LISA-α style
    /// forwarding of stored measurements).
    pub hop_latency: SimDuration,
}

impl Default for SwarmConfig {
    fn default() -> Self {
        Self {
            profile: DeviceProfile::msp430_8mhz(4 * 1024),
            mac_algorithm: MacAlgorithm::HmacSha256,
            measurement_interval: SimDuration::from_secs(10),
            buffer_slots: 16,
            hop_latency: SimDuration::from_millis(5),
        }
    }
}

/// Outcome of an ERASMUS swarm collection (LISA-α style relay of stored
/// measurements).
#[derive(Debug, Clone)]
pub struct SwarmCollectionOutcome {
    /// Per-device report.
    pub report: SwarmReport,
    /// Total wall-clock duration of the collection round.
    pub duration: SimDuration,
    /// Total prover-side computation across the swarm (negligible for
    /// ERASMUS: no cryptography in the collection phase).
    pub total_prover_time: SimDuration,
    /// Devices that were unreachable when the collection ran.
    pub unreachable: BTreeSet<usize>,
}

impl SwarmCollectionOutcome {
    /// Fraction of the swarm successfully attested.
    pub fn coverage(&self) -> f64 {
        self.report.coverage()
    }
}

/// Outcome of an on-demand (SEDA-style) swarm attestation round.
#[derive(Debug, Clone)]
pub struct SwarmOnDemandOutcome {
    /// Per-device report.
    pub report: SwarmReport,
    /// Total wall-clock duration of the round — dominated by per-device
    /// measurement computation.
    pub duration: SimDuration,
    /// Total prover-side computation across the swarm.
    pub total_prover_time: SimDuration,
    /// Devices whose response never reached the verifier (disconnected by
    /// mobility before the protocol finished, or unreachable to begin with).
    pub unreachable: BTreeSet<usize>,
}

impl SwarmOnDemandOutcome {
    /// Fraction of the swarm successfully attested.
    pub fn coverage(&self) -> f64 {
        self.report.coverage()
    }
}

/// A fleet of ERASMUS provers connected by a [`Topology`].
///
/// Device `0..n` map to topology nodes `0..n`; the verifier is assumed to be
/// attached to one node (the *root* of each collection). Each device has its
/// own key derived from a deployment master seed, and the verifier holds all
/// of them — the same trust model as SEDA/LISA.
#[derive(Debug)]
pub struct Swarm {
    config: SwarmConfig,
    topology: Topology,
    provers: Vec<Prover>,
    verifiers: Vec<Verifier>,
}

impl Swarm {
    /// Builds a swarm with one prover per topology node, deriving per-device
    /// keys from `master_seed`.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::EmptySwarm`] for an empty topology and
    /// propagates per-device provisioning errors.
    pub fn new(
        config: SwarmConfig,
        topology: Topology,
        master_seed: &[u8],
    ) -> Result<Self, SwarmError> {
        if topology.is_empty() {
            return Err(SwarmError::EmptySwarm);
        }
        let mut provers = Vec::with_capacity(topology.len());
        let mut verifiers = Vec::with_capacity(topology.len());
        for index in 0..topology.len() {
            let key = DeviceKey::derive(master_seed, index as u64);
            let prover_config = ProverConfig::builder()
                .mac_algorithm(config.mac_algorithm)
                .measurement_interval(config.measurement_interval)
                .buffer_slots(config.buffer_slots)
                .build()
                .map_err(|source| SwarmError::Device { index, source })?;
            let prover = Prover::new(
                DeviceId::new(index as u64),
                config.profile.clone(),
                key.clone(),
                prover_config,
            )
            .map_err(|source| SwarmError::Device { index, source })?;
            let mut verifier = Verifier::new(key, config.mac_algorithm);
            verifier.learn_reference_image(prover.mcu().app_memory());
            verifier.set_expected_interval(config.measurement_interval);
            provers.push(prover);
            verifiers.push(verifier);
        }
        Ok(Self {
            config,
            topology,
            provers,
            verifiers,
        })
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.provers.len()
    }

    /// Whether the swarm has no devices (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.provers.is_empty()
    }

    /// The shared configuration.
    pub fn config(&self) -> &SwarmConfig {
        &self.config
    }

    /// The current topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable access to the topology (e.g. to apply mobility between
    /// collection rounds).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// Immutable access to one device.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::UnknownDevice`] for out-of-range indices.
    pub fn prover(&self, index: usize) -> Result<&Prover, SwarmError> {
        self.provers.get(index).ok_or(SwarmError::UnknownDevice {
            index,
            size: self.provers.len(),
        })
    }

    /// Mutable access to one device (used by tests and malware models).
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::UnknownDevice`] for out-of-range indices.
    pub fn prover_mut(&mut self, index: usize) -> Result<&mut Prover, SwarmError> {
        let size = self.provers.len();
        self.provers
            .get_mut(index)
            .ok_or(SwarmError::UnknownDevice { index, size })
    }

    /// Advances every device to `horizon`, letting scheduled self-
    /// measurements fire.
    ///
    /// # Errors
    ///
    /// Propagates the first per-device failure.
    pub fn run_until(&mut self, horizon: SimTime) -> Result<(), SwarmError> {
        for (index, prover) in self.provers.iter_mut().enumerate() {
            prover
                .run_until(horizon)
                .map_err(|source| SwarmError::Device { index, source })?;
        }
        Ok(())
    }

    /// ERASMUS swarm collection (Section 6): the verifier, attached at
    /// `root`, floods a collection request; every reachable device answers
    /// with its latest `k` stored measurements, relayed hop by hop. No
    /// cryptographic work happens on any prover.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::UnknownDevice`] if `root` is out of range.
    pub fn erasmus_collection(
        &mut self,
        root: usize,
        now: SimTime,
        k: usize,
    ) -> Result<SwarmCollectionOutcome, SwarmError> {
        if root >= self.provers.len() {
            return Err(SwarmError::UnknownDevice {
                index: root,
                size: self.provers.len(),
            });
        }
        let reachable = self.topology.reachable_from(root);
        let distances = self.topology.hop_distances(root);
        let mut statuses = Vec::with_capacity(self.provers.len());
        let mut unreachable = BTreeSet::new();
        let mut total_prover_time = SimDuration::ZERO;
        let mut max_hops = 0usize;

        for (index, &distance) in distances.iter().enumerate() {
            if !reachable.contains(&index) {
                statuses.push((index, DeviceStatus::Unreachable));
                unreachable.insert(index);
                continue;
            }
            max_hops = max_hops.max(distance.unwrap_or(0));
            let response =
                self.provers[index].handle_collection(&CollectionRequest::latest(k), now);
            total_prover_time += response.prover_time;
            let status = match self.verifiers[index].verify_collection(&response, now) {
                Ok(report) => DeviceStatus::from_verdict(report.verdict()),
                Err(_) => DeviceStatus::Compromised,
            };
            statuses.push((index, status));
        }

        // The round finishes once the farthest response has been relayed
        // back: two traversals of the deepest path plus the (tiny) per-device
        // serving time.
        let duration = self.config.hop_latency * (2 * max_hops) as u64 + total_prover_time;
        Ok(SwarmCollectionOutcome {
            report: SwarmReport::from_statuses(statuses),
            duration,
            total_prover_time,
            unreachable,
        })
    }

    /// On-demand (SEDA-style) swarm attestation baseline: the request floods
    /// from `root`, every device computes a *fresh* measurement, and the
    /// responses are gathered back. The round takes at least one full
    /// measurement computation, during which `mobility` keeps rewiring the
    /// topology; a device's response only counts if the device is still
    /// connected to the root when the responses are gathered.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::UnknownDevice`] if `root` is out of range and
    /// propagates per-device protocol errors.
    pub fn on_demand_attestation(
        &mut self,
        root: usize,
        now: SimTime,
        mobility: &mut MobilitySimulator,
    ) -> Result<SwarmOnDemandOutcome, SwarmError> {
        if root >= self.provers.len() {
            return Err(SwarmError::UnknownDevice {
                index: root,
                size: self.provers.len(),
            });
        }
        let reachable_at_request = self.topology.reachable_from(root);
        let distances = self.topology.hop_distances(root);
        let mut max_hops = 0usize;
        let mut total_prover_time = SimDuration::ZERO;
        let mut fresh_results: Vec<Option<DeviceStatus>> = vec![None; self.provers.len()];

        for index in 0..self.provers.len() {
            if !reachable_at_request.contains(&index) {
                continue;
            }
            max_hops = max_hops.max(distances[index].unwrap_or(0));
            let request = self.verifiers[index].make_on_demand_request(0, now);
            let response = self.provers[index]
                .handle_on_demand(&request, now)
                .map_err(|source| SwarmError::Device { index, source })?;
            total_prover_time += response.prover_time;
            let status = match self.verifiers[index].verify_on_demand(&request, &response, now) {
                Ok(report) => DeviceStatus::from_verdict(report.verdict()),
                Err(_) => DeviceStatus::Compromised,
            };
            fresh_results[index] = Some(status);
        }

        // The protocol holds the spanning tree for the duration of the
        // slowest device's computation plus the relay back; mobility keeps
        // acting during that window. SEDA-style protocols need the tree to
        // stay intact, so a device only delivers its report if it remains
        // connected to the root through every mobility epoch of the round.
        let measured_bytes = self.config.profile.app_memory_bytes();
        let measurement_time = self.provers[root]
            .mcu()
            .cost_model()
            .measurement(measured_bytes, self.config.mac_algorithm);
        let duration = measurement_time + self.config.hop_latency * (2 * max_hops) as u64;
        let mut connected_throughout = reachable_at_request.clone();
        for _ in 0..mobility.model().epochs_during(duration) {
            mobility.step(&mut self.topology);
            let reachable_now = self.topology.reachable_from(root);
            connected_throughout.retain(|node| reachable_now.contains(node));
        }

        let mut statuses = Vec::with_capacity(self.provers.len());
        let mut unreachable = BTreeSet::new();
        for (index, fresh) in fresh_results.iter().enumerate() {
            match *fresh {
                Some(status) if connected_throughout.contains(&index) => {
                    statuses.push((index, status));
                }
                _ => {
                    statuses.push((index, DeviceStatus::Unreachable));
                    unreachable.insert(index);
                }
            }
        }

        Ok(SwarmOnDemandOutcome {
            report: SwarmReport::from_statuses(statuses),
            duration,
            total_prover_time,
            unreachable,
        })
    }

    /// Convenience for experiments: infects one device by writing a payload
    /// into its application memory (persistent compromise).
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::UnknownDevice`] for out-of-range indices.
    pub fn infect_device(&mut self, index: usize, now: SimTime) -> Result<(), SwarmError> {
        let size = self.provers.len();
        let prover = self
            .provers
            .get_mut(index)
            .ok_or(SwarmError::UnknownDevice { index, size })?;
        prover.mcu_mut().advance_time_to(now);
        prover
            .mcu_mut()
            .write_app_memory(0, b"swarm malware payload")
            .map_err(|err| SwarmError::Device {
                index,
                source: err.into(),
            })
    }
}

/// Builds a deterministic mobility simulator for experiments.
pub fn mobility_for_experiment(model: MobilityModel, seed: u64) -> MobilitySimulator {
    MobilitySimulator::new(model, SimRng::seed_from(seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn swarm(nodes: usize) -> Swarm {
        Swarm::new(SwarmConfig::default(), Topology::ring(nodes), b"test fleet")
            .expect("swarm builds")
    }

    #[test]
    fn construction_and_accessors() {
        let swarm = swarm(6);
        assert_eq!(swarm.len(), 6);
        assert!(!swarm.is_empty());
        assert!(swarm.prover(0).is_ok());
        assert!(swarm.prover(6).is_err());
        assert_eq!(swarm.topology().len(), 6);
        assert_eq!(swarm.config().buffer_slots, 16);
    }

    #[test]
    fn empty_topology_rejected() {
        assert!(matches!(
            Swarm::new(SwarmConfig::default(), Topology::new(0), b"seed"),
            Err(SwarmError::EmptySwarm)
        ));
    }

    #[test]
    fn devices_have_distinct_keys() {
        let mut swarm = swarm(3);
        swarm.run_until(SimTime::from_secs(10)).expect("run");
        let m0 = swarm
            .prover(0)
            .expect("device")
            .buffer()
            .most_recent()
            .expect("m")
            .clone();
        let m1 = swarm
            .prover(1)
            .expect("device")
            .buffer()
            .most_recent()
            .expect("m")
            .clone();
        // Same memory contents and timestamp, different keys → different tags.
        assert_eq!(m0.digest(), m1.digest());
        assert_ne!(m0.tag(), m1.tag());
        let _ = swarm.prover_mut(0).expect("device");
    }

    #[test]
    fn healthy_connected_swarm_has_full_coverage() {
        let mut swarm = swarm(8);
        swarm.run_until(SimTime::from_secs(60)).expect("run");
        let outcome = swarm
            .erasmus_collection(0, SimTime::from_secs(60), 4)
            .expect("collection");
        assert_eq!(outcome.coverage(), 1.0);
        assert!(outcome.report.swarm_healthy());
        assert!(outcome.unreachable.is_empty());
        // Collection is fast: well under a second for an 8-device ring.
        assert!(
            outcome.duration < SimDuration::from_secs(1),
            "{}",
            outcome.duration
        );
    }

    #[test]
    fn compromised_device_is_flagged_in_swarm_report() {
        let mut swarm = swarm(5);
        swarm.run_until(SimTime::from_secs(20)).expect("run");
        swarm
            .infect_device(3, SimTime::from_secs(25))
            .expect("infect");
        swarm.run_until(SimTime::from_secs(60)).expect("run");
        let outcome = swarm
            .erasmus_collection(0, SimTime::from_secs(60), 6)
            .expect("collection");
        assert!(!outcome.report.swarm_healthy());
        assert_eq!(outcome.report.unhealthy_devices(), vec![3]);
        assert_eq!(outcome.report.status(3), Some(DeviceStatus::Compromised));
    }

    #[test]
    fn partitioned_devices_are_unreachable() {
        let mut swarm = swarm(6);
        swarm.run_until(SimTime::from_secs(30)).expect("run");
        // Cut node 3 off entirely.
        swarm.topology_mut().remove_link(2, 3);
        swarm.topology_mut().remove_link(3, 4);
        let outcome = swarm
            .erasmus_collection(0, SimTime::from_secs(30), 3)
            .expect("collection");
        assert_eq!(outcome.report.status(3), Some(DeviceStatus::Unreachable));
        assert!(outcome.coverage() < 1.0);
        assert!(outcome.unreachable.contains(&3));
    }

    #[test]
    fn on_demand_round_is_much_slower_than_erasmus_collection() {
        let mut swarm = swarm(6);
        swarm.run_until(SimTime::from_secs(60)).expect("run");
        let erasmus = swarm
            .erasmus_collection(0, SimTime::from_secs(60), 4)
            .expect("collection");
        let mut mobility = mobility_for_experiment(MobilityModel::Static, 1);
        let on_demand = swarm
            .on_demand_attestation(0, SimTime::from_secs(61), &mut mobility)
            .expect("attestation");
        assert_eq!(on_demand.coverage(), 1.0);
        // The on-demand round is dominated by the fresh measurement (seconds
        // on the MSP430 profile); the ERASMUS collection is milliseconds.
        assert!(on_demand.duration.as_secs_f64() / erasmus.duration.as_secs_f64() > 50.0);
        assert!(on_demand.total_prover_time > erasmus.total_prover_time);
    }

    #[test]
    fn mobility_hurts_on_demand_but_not_erasmus_collection() {
        let config = SwarmConfig::default();
        let mut rng = SimRng::seed_from(42);
        let topology = Topology::random_connected(24, 3.0, &mut rng);
        let mut swarm = Swarm::new(config, topology, b"mobile fleet").expect("swarm builds");
        swarm.run_until(SimTime::from_secs(60)).expect("run");

        // High churn: every device rewires every 100 ms on average.
        let model = MobilityModel::churn(SimDuration::from_millis(100), 0.6);
        let mut mobility = mobility_for_experiment(model, 7);

        let erasmus = swarm
            .erasmus_collection(0, SimTime::from_secs(60), 6)
            .expect("collection");
        let on_demand = swarm
            .on_demand_attestation(0, SimTime::from_secs(61), &mut mobility)
            .expect("attestation");

        assert!(
            erasmus.coverage() > 0.95,
            "erasmus coverage {}",
            erasmus.coverage()
        );
        assert!(
            on_demand.coverage() < erasmus.coverage(),
            "on-demand {} vs erasmus {}",
            on_demand.coverage(),
            erasmus.coverage()
        );
    }
}
