//! Quality of Swarm Attestation (QoSA).
//!
//! QoSA (introduced by LISA and referenced in Section 6) captures *how much
//! information* the verifier learns from a swarm attestation: from a single
//! bit ("is the whole swarm healthy?") to the full per-device picture. QoSA
//! is orthogonal to QoA — one is spatial, the other temporal — and the two
//! compose: a swarm report at any QoSA level can be built from per-device
//! ERASMUS histories.

use std::collections::BTreeMap;

use erasmus_core::AttestationVerdict;

/// Per-device outcome inside a swarm report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceStatus {
    /// The device's history verified and showed only healthy software.
    Healthy,
    /// The device's history showed compromise or tampering.
    Compromised,
    /// The device could not be reached during the collection.
    Unreachable,
}

impl DeviceStatus {
    /// Collapses a per-device attestation verdict into a swarm status.
    pub fn from_verdict(verdict: AttestationVerdict) -> Self {
        if verdict.indicates_compromise() {
            DeviceStatus::Compromised
        } else {
            DeviceStatus::Healthy
        }
    }
}

/// How much detail the verifier asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QosaLevel {
    /// One bit: is every reachable device healthy and was every device
    /// reached?
    Binary,
    /// The list of devices that are *not* known to be healthy.
    List,
    /// Full per-device status.
    Full,
}

/// A swarm attestation report at a chosen QoSA level.
///
/// # Example
///
/// ```
/// use erasmus_swarm::{DeviceStatus, QosaLevel, SwarmReport};
///
/// let report = SwarmReport::from_statuses([
///     (0, DeviceStatus::Healthy),
///     (1, DeviceStatus::Compromised),
///     (2, DeviceStatus::Unreachable),
/// ]);
/// assert!(!report.swarm_healthy());
/// assert_eq!(report.unhealthy_devices(), vec![1, 2]);
/// assert_eq!(report.summary(QosaLevel::Binary), "swarm unhealthy");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwarmReport {
    statuses: BTreeMap<usize, DeviceStatus>,
}

impl SwarmReport {
    /// Builds a report from per-device statuses.
    pub fn from_statuses<I: IntoIterator<Item = (usize, DeviceStatus)>>(statuses: I) -> Self {
        Self {
            statuses: statuses.into_iter().collect(),
        }
    }

    /// Number of devices covered by the report.
    pub fn len(&self) -> usize {
        self.statuses.len()
    }

    /// Whether the report is empty.
    pub fn is_empty(&self) -> bool {
        self.statuses.is_empty()
    }

    /// Per-device statuses (Full QoSA).
    pub fn statuses(&self) -> &BTreeMap<usize, DeviceStatus> {
        &self.statuses
    }

    /// The status of one device, if it appears in the report.
    pub fn status(&self, device: usize) -> Option<DeviceStatus> {
        self.statuses.get(&device).copied()
    }

    /// Binary QoSA: `true` only if every device was reached and healthy.
    pub fn swarm_healthy(&self) -> bool {
        !self.statuses.is_empty() && self.statuses.values().all(|s| *s == DeviceStatus::Healthy)
    }

    /// List QoSA: devices that are compromised or unreachable, ascending.
    pub fn unhealthy_devices(&self) -> Vec<usize> {
        self.statuses
            .iter()
            .filter(|(_, status)| **status != DeviceStatus::Healthy)
            .map(|(device, _)| *device)
            .collect()
    }

    /// Count of devices with the given status.
    pub fn count(&self, status: DeviceStatus) -> usize {
        self.statuses.values().filter(|s| **s == status).count()
    }

    /// Fraction of devices that were reached (healthy or compromised), the
    /// coverage metric used by the mobility experiments.
    pub fn coverage(&self) -> f64 {
        if self.statuses.is_empty() {
            return 0.0;
        }
        1.0 - self.count(DeviceStatus::Unreachable) as f64 / self.statuses.len() as f64
    }

    /// Renders the report at the requested QoSA level.
    pub fn summary(&self, level: QosaLevel) -> String {
        match level {
            QosaLevel::Binary => {
                if self.swarm_healthy() {
                    "swarm healthy".to_owned()
                } else {
                    "swarm unhealthy".to_owned()
                }
            }
            QosaLevel::List => {
                let unhealthy = self.unhealthy_devices();
                if unhealthy.is_empty() {
                    "no unhealthy devices".to_owned()
                } else {
                    format!(
                        "unhealthy devices: {}",
                        unhealthy
                            .iter()
                            .map(|d| d.to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    )
                }
            }
            QosaLevel::Full => self
                .statuses
                .iter()
                .map(|(device, status)| format!("device {device}: {status:?}"))
                .collect::<Vec<_>>()
                .join("\n"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mixed_report() -> SwarmReport {
        SwarmReport::from_statuses([
            (0, DeviceStatus::Healthy),
            (1, DeviceStatus::Healthy),
            (2, DeviceStatus::Compromised),
            (3, DeviceStatus::Unreachable),
        ])
    }

    #[test]
    fn binary_qosa() {
        assert!(!mixed_report().swarm_healthy());
        let healthy =
            SwarmReport::from_statuses([(0, DeviceStatus::Healthy), (1, DeviceStatus::Healthy)]);
        assert!(healthy.swarm_healthy());
        assert_eq!(healthy.summary(QosaLevel::Binary), "swarm healthy");
        assert_eq!(mixed_report().summary(QosaLevel::Binary), "swarm unhealthy");
        assert!(!SwarmReport::from_statuses([]).swarm_healthy());
    }

    #[test]
    fn list_qosa() {
        let report = mixed_report();
        assert_eq!(report.unhealthy_devices(), vec![2, 3]);
        assert!(report.summary(QosaLevel::List).contains("2, 3"));
        let healthy = SwarmReport::from_statuses([(0, DeviceStatus::Healthy)]);
        assert_eq!(healthy.summary(QosaLevel::List), "no unhealthy devices");
    }

    #[test]
    fn full_qosa_and_counts() {
        let report = mixed_report();
        assert_eq!(report.len(), 4);
        assert!(!report.is_empty());
        assert_eq!(report.count(DeviceStatus::Healthy), 2);
        assert_eq!(report.count(DeviceStatus::Compromised), 1);
        assert_eq!(report.count(DeviceStatus::Unreachable), 1);
        assert_eq!(report.status(2), Some(DeviceStatus::Compromised));
        assert_eq!(report.status(9), None);
        let full = report.summary(QosaLevel::Full);
        assert_eq!(full.lines().count(), 4);
        assert!(full.contains("device 3: Unreachable"));
    }

    #[test]
    fn coverage_counts_reached_devices() {
        assert!((mixed_report().coverage() - 0.75).abs() < 1e-12);
        assert_eq!(SwarmReport::from_statuses([]).coverage(), 0.0);
    }

    #[test]
    fn verdict_conversion() {
        assert_eq!(
            DeviceStatus::from_verdict(AttestationVerdict::AllHealthy),
            DeviceStatus::Healthy
        );
        assert_eq!(
            DeviceStatus::from_verdict(AttestationVerdict::CompromiseDetected),
            DeviceStatus::Compromised
        );
        assert_eq!(
            DeviceStatus::from_verdict(AttestationVerdict::TamperingDetected),
            DeviceStatus::Compromised
        );
    }
}
