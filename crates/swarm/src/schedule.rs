//! Staggered measurement scheduling for swarm availability.
//!
//! Section 6 closes with an availability observation: with on-demand swarm
//! attestation a large part of the network may be busy computing
//! measurements at the same time, whereas with ERASMUS "it is trivial to
//! establish a schedule which ensures that only a fraction of the swarm
//! computes measurements at any given time". [`StaggeredSchedule`] is that
//! schedule: devices are partitioned into groups whose measurement phases
//! are offset within `T_M`.

use erasmus_sim::{SimDuration, SimTime};

/// Assigns each device a phase offset so that at most `⌈n / groups⌉`
/// devices measure simultaneously.
///
/// # Example
///
/// ```
/// use erasmus_swarm::StaggeredSchedule;
/// use erasmus_sim::SimDuration;
///
/// let schedule = StaggeredSchedule::new(8, 4, SimDuration::from_secs(60));
/// // Devices 0 and 4 share a group and therefore an offset; device 1 is
/// // offset by a quarter of T_M.
/// assert_eq!(schedule.offset(0), schedule.offset(4));
/// assert_eq!(schedule.offset(1), SimDuration::from_secs(15));
/// assert_eq!(schedule.max_concurrent(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaggeredSchedule {
    devices: usize,
    groups: usize,
    measurement_interval: SimDuration,
}

impl StaggeredSchedule {
    /// Creates a schedule for `devices` devices split into `groups` groups
    /// over a measurement interval `measurement_interval`.
    ///
    /// # Panics
    ///
    /// Panics if `groups` is zero or `measurement_interval` is zero.
    pub fn new(devices: usize, groups: usize, measurement_interval: SimDuration) -> Self {
        assert!(groups > 0, "at least one group is required");
        assert!(
            !measurement_interval.is_zero(),
            "measurement interval must be non-zero"
        );
        Self {
            devices,
            groups: groups.min(devices.max(1)),
            measurement_interval,
        }
    }

    /// Number of devices covered.
    pub fn devices(&self) -> usize {
        self.devices
    }

    /// Number of groups (clamped to the device count).
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// The group a device belongs to.
    pub fn group_of(&self, device: usize) -> usize {
        device % self.groups
    }

    /// The phase offset of a device within `T_M`.
    pub fn offset(&self, device: usize) -> SimDuration {
        self.measurement_interval * self.group_of(device) as u64 / self.groups as u64
    }

    /// The first measurement instant of a device.
    pub fn first_measurement(&self, device: usize) -> SimTime {
        SimTime::ZERO + self.measurement_interval + self.offset(device)
    }

    /// Largest number of devices measuring at the same instant.
    pub fn max_concurrent(&self) -> usize {
        self.devices.div_ceil(self.groups)
    }

    /// Fraction of the swarm that can be busy measuring at once.
    pub fn max_busy_fraction(&self) -> f64 {
        if self.devices == 0 {
            return 0.0;
        }
        self.max_concurrent() as f64 / self.devices as f64
    }

    /// The devices measuring at a given offset slot (group index).
    pub fn devices_in_group(&self, group: usize) -> Vec<usize> {
        (0..self.devices)
            .filter(|d| self.group_of(*d) == group)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TM: SimDuration = SimDuration::from_secs(60);

    #[test]
    fn offsets_spread_within_interval() {
        let schedule = StaggeredSchedule::new(12, 4, TM);
        assert_eq!(schedule.offset(0), SimDuration::ZERO);
        assert_eq!(schedule.offset(1), SimDuration::from_secs(15));
        assert_eq!(schedule.offset(2), SimDuration::from_secs(30));
        assert_eq!(schedule.offset(3), SimDuration::from_secs(45));
        assert_eq!(schedule.offset(4), SimDuration::ZERO);
        assert!(schedule.offset(11) < TM);
    }

    #[test]
    fn concurrency_bound() {
        let schedule = StaggeredSchedule::new(100, 10, TM);
        assert_eq!(schedule.max_concurrent(), 10);
        assert!((schedule.max_busy_fraction() - 0.1).abs() < 1e-12);
        // Every group has exactly 10 devices.
        for group in 0..10 {
            assert_eq!(schedule.devices_in_group(group).len(), 10);
        }
    }

    #[test]
    fn uneven_split() {
        let schedule = StaggeredSchedule::new(10, 3, TM);
        assert_eq!(schedule.max_concurrent(), 4);
        assert_eq!(schedule.devices_in_group(0), vec![0, 3, 6, 9]);
        assert_eq!(schedule.devices_in_group(2), vec![2, 5, 8]);
    }

    #[test]
    fn groups_clamped_to_device_count() {
        let schedule = StaggeredSchedule::new(3, 10, TM);
        assert_eq!(schedule.groups(), 3);
        assert_eq!(schedule.max_concurrent(), 1);
        assert_eq!(schedule.devices(), 3);
    }

    #[test]
    fn first_measurement_includes_offset() {
        let schedule = StaggeredSchedule::new(4, 4, TM);
        assert_eq!(schedule.first_measurement(0), SimTime::from_secs(60));
        assert_eq!(schedule.first_measurement(2), SimTime::from_secs(90));
    }

    #[test]
    fn zero_devices_edge_case() {
        let schedule = StaggeredSchedule::new(0, 4, TM);
        assert_eq!(schedule.max_busy_fraction(), 0.0);
        assert_eq!(schedule.devices_in_group(0), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "at least one group")]
    fn zero_groups_panics() {
        let _ = StaggeredSchedule::new(4, 0, TM);
    }
}
