//! Device mobility: link churn applied to the topology over time.
//!
//! The paper's argument in Section 6 is about *how long* the topology has to
//! hold still: on-demand swarm attestation needs it static for the entire
//! protocol run (dominated by per-device measurement computation), while the
//! ERASMUS collection phase is so short that mobility barely matters. The
//! mobility model here is deliberately simple — per-epoch link churn — which
//! is enough to expose that asymmetry.

use erasmus_sim::{SimDuration, SimRng};

use crate::topology::Topology;

/// How the swarm's connectivity changes over time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MobilityModel {
    /// The topology never changes.
    Static,
    /// Every `epoch`, each device rewires one of its links with probability
    /// `churn_probability` (drops a random existing link and gains a link to
    /// a random other device).
    Churn {
        /// Length of one mobility epoch.
        epoch: SimDuration,
        /// Per-device probability of rewiring per epoch, in `[0, 1]`.
        churn_probability: f64,
    },
}

impl MobilityModel {
    /// A churn model with the given epoch and per-device rewiring
    /// probability.
    ///
    /// # Panics
    ///
    /// Panics if the probability is outside `[0, 1]` or the epoch is zero.
    pub fn churn(epoch: SimDuration, churn_probability: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&churn_probability),
            "churn probability must be within [0, 1], got {churn_probability}"
        );
        assert!(!epoch.is_zero(), "mobility epoch must be non-zero");
        MobilityModel::Churn {
            epoch,
            churn_probability,
        }
    }

    /// Length of one mobility epoch (`None` for a static swarm).
    pub fn epoch(&self) -> Option<SimDuration> {
        match self {
            MobilityModel::Static => None,
            MobilityModel::Churn { epoch, .. } => Some(*epoch),
        }
    }

    /// Number of whole mobility epochs that elapse during `duration`.
    pub fn epochs_during(&self, duration: SimDuration) -> u64 {
        match self {
            MobilityModel::Static => 0,
            MobilityModel::Churn { epoch, .. } => duration.as_nanos() / epoch.as_nanos(),
        }
    }
}

/// Applies a [`MobilityModel`] to a [`Topology`].
///
/// # Example
///
/// ```
/// use erasmus_swarm::{MobilityModel, MobilitySimulator, Topology};
/// use erasmus_sim::{SimDuration, SimRng};
///
/// let mut topology = Topology::ring(16);
/// let mut mobility = MobilitySimulator::new(
///     MobilityModel::churn(SimDuration::from_secs(1), 0.5),
///     SimRng::seed_from(7),
/// );
/// let before = topology.links();
/// mobility.advance(&mut topology, SimDuration::from_secs(10));
/// assert_ne!(before, topology.links(), "ten epochs of churn rewired something");
/// ```
#[derive(Debug, Clone)]
pub struct MobilitySimulator {
    model: MobilityModel,
    rng: SimRng,
    epochs_applied: u64,
}

impl MobilitySimulator {
    /// Creates a simulator for `model` driven by `rng`.
    pub fn new(model: MobilityModel, rng: SimRng) -> Self {
        Self {
            model,
            rng,
            epochs_applied: 0,
        }
    }

    /// The mobility model.
    pub fn model(&self) -> MobilityModel {
        self.model
    }

    /// Total epochs applied so far.
    pub fn epochs_applied(&self) -> u64 {
        self.epochs_applied
    }

    /// Applies one epoch of churn to `topology`.
    pub fn step(&mut self, topology: &mut Topology) {
        let MobilityModel::Churn {
            churn_probability, ..
        } = self.model
        else {
            return;
        };
        let nodes = topology.len();
        if nodes < 3 {
            return;
        }
        for node in 0..nodes {
            if !self.rng.gen_bool(churn_probability) {
                continue;
            }
            // Drop one existing link (if any)…
            let neighbors = topology.neighbors(node);
            if let Some(&victim) =
                neighbors.get(self.rng.gen_range(0, neighbors.len().max(1) as u64) as usize)
            {
                topology.remove_link(node, victim);
            }
            // …and gain a link to a random other node.
            let mut other = self.rng.gen_range(0, nodes as u64) as usize;
            if other == node {
                other = (other + 1) % nodes;
            }
            topology.add_link(node, other);
        }
        self.epochs_applied += 1;
    }

    /// Applies as many whole epochs as fit in `duration`.
    pub fn advance(&mut self, topology: &mut Topology, duration: SimDuration) {
        for _ in 0..self.model.epochs_during(duration) {
            self.step(topology);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_model_never_changes_anything() {
        let mut topology = Topology::ring(8);
        let before = topology.clone();
        let mut mobility = MobilitySimulator::new(MobilityModel::Static, SimRng::seed_from(1));
        mobility.advance(&mut topology, SimDuration::from_secs(1_000));
        assert_eq!(topology, before);
        assert_eq!(mobility.epochs_applied(), 0);
        assert_eq!(MobilityModel::Static.epoch(), None);
    }

    #[test]
    fn churn_rewires_links() {
        let mut topology = Topology::ring(32);
        let before = topology.links();
        let mut mobility = MobilitySimulator::new(
            MobilityModel::churn(SimDuration::from_secs(1), 0.8),
            SimRng::seed_from(5),
        );
        mobility.advance(&mut topology, SimDuration::from_secs(5));
        assert_eq!(mobility.epochs_applied(), 5);
        assert_ne!(before, topology.links());
        // Node count is preserved, only links move.
        assert_eq!(topology.len(), 32);
    }

    #[test]
    fn zero_probability_churn_is_a_no_op() {
        let mut topology = Topology::ring(8);
        let before = topology.clone();
        let mut mobility = MobilitySimulator::new(
            MobilityModel::churn(SimDuration::from_secs(1), 0.0),
            SimRng::seed_from(5),
        );
        mobility.advance(&mut topology, SimDuration::from_secs(50));
        assert_eq!(topology, before);
        assert_eq!(mobility.epochs_applied(), 50);
    }

    #[test]
    fn epochs_during_counts_whole_epochs() {
        let model = MobilityModel::churn(SimDuration::from_secs(2), 0.5);
        assert_eq!(model.epochs_during(SimDuration::from_secs(7)), 3);
        assert_eq!(model.epochs_during(SimDuration::from_millis(100)), 0);
        assert_eq!(
            MobilityModel::Static.epochs_during(SimDuration::from_secs(100)),
            0
        );
        assert_eq!(model.epoch(), Some(SimDuration::from_secs(2)));
    }

    #[test]
    fn tiny_swarms_are_left_alone() {
        let mut topology = Topology::ring(2);
        let before = topology.clone();
        let mut mobility = MobilitySimulator::new(
            MobilityModel::churn(SimDuration::from_secs(1), 1.0),
            SimRng::seed_from(5),
        );
        mobility.step(&mut topology);
        assert_eq!(topology, before);
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn invalid_probability_panics() {
        let _ = MobilityModel::churn(SimDuration::from_secs(1), 1.5);
    }
}
