//! Swarm connectivity graph.

use std::collections::{BTreeSet, VecDeque};

use erasmus_sim::SimRng;

/// An undirected connectivity graph over `n` devices (node indices
/// `0..n`).
///
/// # Example
///
/// ```
/// use erasmus_swarm::Topology;
///
/// let ring = Topology::ring(5);
/// assert!(ring.is_connected());
/// assert_eq!(ring.neighbors(0), vec![1, 4]);
/// assert_eq!(ring.reachable_from(0).len(), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Topology {
    nodes: usize,
    /// Sorted adjacency sets (BTreeSet keeps iteration deterministic).
    adjacency: Vec<BTreeSet<usize>>,
}

impl Topology {
    /// Creates a topology with `nodes` isolated nodes.
    pub fn new(nodes: usize) -> Self {
        Self {
            nodes,
            adjacency: vec![BTreeSet::new(); nodes],
        }
    }

    /// A ring of `nodes` devices (each connected to its two neighbours).
    pub fn ring(nodes: usize) -> Self {
        let mut topology = Self::new(nodes);
        if nodes > 1 {
            for i in 0..nodes {
                topology.add_link(i, (i + 1) % nodes);
            }
        }
        topology
    }

    /// A full mesh over `nodes` devices.
    pub fn full_mesh(nodes: usize) -> Self {
        let mut topology = Self::new(nodes);
        for a in 0..nodes {
            for b in (a + 1)..nodes {
                topology.add_link(a, b);
            }
        }
        topology
    }

    /// A `width × height` grid (4-neighbour connectivity).
    pub fn grid(width: usize, height: usize) -> Self {
        let mut topology = Self::new(width * height);
        for y in 0..height {
            for x in 0..width {
                let node = y * width + x;
                if x + 1 < width {
                    topology.add_link(node, node + 1);
                }
                if y + 1 < height {
                    topology.add_link(node, node + width);
                }
            }
        }
        topology
    }

    /// A random connected topology: a random spanning tree plus extra random
    /// links until the average degree reaches `target_degree`.
    pub fn random_connected(nodes: usize, target_degree: f64, rng: &mut SimRng) -> Self {
        let mut topology = Self::new(nodes);
        if nodes <= 1 {
            return topology;
        }
        // Random spanning tree: attach each node to a random earlier node.
        for node in 1..nodes {
            let parent = rng.gen_range(0, node as u64) as usize;
            topology.add_link(node, parent);
        }
        let target_links = ((target_degree * nodes as f64) / 2.0).ceil() as usize;
        let mut guard = 0usize;
        while topology.link_count() < target_links && guard < nodes * nodes {
            let a = rng.gen_range(0, nodes as u64) as usize;
            let b = rng.gen_range(0, nodes as u64) as usize;
            if a != b {
                topology.add_link(a, b);
            }
            guard += 1;
        }
        topology
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes
    }

    /// Whether the topology has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes == 0
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.adjacency.iter().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Adds an undirected link (no-op for self-links or out-of-range nodes).
    pub fn add_link(&mut self, a: usize, b: usize) {
        if a == b || a >= self.nodes || b >= self.nodes {
            return;
        }
        self.adjacency[a].insert(b);
        self.adjacency[b].insert(a);
    }

    /// Removes an undirected link if present.
    pub fn remove_link(&mut self, a: usize, b: usize) {
        if a < self.nodes && b < self.nodes {
            self.adjacency[a].remove(&b);
            self.adjacency[b].remove(&a);
        }
    }

    /// Whether `a` and `b` are directly linked.
    pub fn has_link(&self, a: usize, b: usize) -> bool {
        a < self.nodes && self.adjacency[a].contains(&b)
    }

    /// Neighbours of `node`, in ascending order.
    pub fn neighbors(&self, node: usize) -> Vec<usize> {
        self.adjacency
            .get(node)
            .map(|set| set.iter().copied().collect())
            .unwrap_or_default()
    }

    /// All undirected links as `(low, high)` pairs.
    pub fn links(&self) -> Vec<(usize, usize)> {
        let mut links = Vec::with_capacity(self.link_count());
        for (a, neighbors) in self.adjacency.iter().enumerate() {
            for &b in neighbors {
                if a < b {
                    links.push((a, b));
                }
            }
        }
        links
    }

    /// The set of nodes reachable from `root` (including `root` itself).
    pub fn reachable_from(&self, root: usize) -> BTreeSet<usize> {
        let mut reachable = BTreeSet::new();
        if root >= self.nodes {
            return reachable;
        }
        let mut queue = VecDeque::from([root]);
        reachable.insert(root);
        while let Some(node) = queue.pop_front() {
            for &next in &self.adjacency[node] {
                if reachable.insert(next) {
                    queue.push_back(next);
                }
            }
        }
        reachable
    }

    /// Hop distance from `root` to every node (`None` for unreachable ones).
    pub fn hop_distances(&self, root: usize) -> Vec<Option<usize>> {
        let mut distances = vec![None; self.nodes];
        if root >= self.nodes {
            return distances;
        }
        distances[root] = Some(0);
        let mut queue = VecDeque::from([root]);
        while let Some(node) = queue.pop_front() {
            let next_distance = distances[node].expect("visited nodes have a distance") + 1;
            for &next in &self.adjacency[node] {
                if distances[next].is_none() {
                    distances[next] = Some(next_distance);
                    queue.push_back(next);
                }
            }
        }
        distances
    }

    /// Whether every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        self.nodes <= 1 || self.reachable_from(0).len() == self.nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_properties() {
        let ring = Topology::ring(6);
        assert_eq!(ring.len(), 6);
        assert_eq!(ring.link_count(), 6);
        assert!(ring.is_connected());
        assert_eq!(ring.neighbors(0), vec![1, 5]);
        assert_eq!(ring.hop_distances(0)[3], Some(3));
    }

    #[test]
    fn grid_properties() {
        let grid = Topology::grid(3, 3);
        assert_eq!(grid.len(), 9);
        assert_eq!(grid.link_count(), 12);
        assert!(grid.is_connected());
        // Centre node has 4 neighbours.
        assert_eq!(grid.neighbors(4).len(), 4);
        // Opposite corner is 4 hops away.
        assert_eq!(grid.hop_distances(0)[8], Some(4));
    }

    #[test]
    fn full_mesh_properties() {
        let mesh = Topology::full_mesh(5);
        assert_eq!(mesh.link_count(), 10);
        assert!(mesh.hop_distances(0).iter().skip(1).all(|d| *d == Some(1)));
    }

    #[test]
    fn add_remove_links() {
        let mut topology = Topology::new(4);
        assert!(!topology.is_connected());
        topology.add_link(0, 1);
        topology.add_link(1, 2);
        topology.add_link(2, 3);
        assert!(topology.is_connected());
        assert!(topology.has_link(1, 2));
        topology.remove_link(1, 2);
        assert!(!topology.has_link(1, 2));
        assert!(!topology.is_connected());
        assert_eq!(topology.reachable_from(0), BTreeSet::from([0, 1]));
        // Self-links and out-of-range links are ignored.
        topology.add_link(0, 0);
        topology.add_link(0, 99);
        assert_eq!(topology.neighbors(0), vec![1]);
        assert!(topology.neighbors(99).is_empty());
    }

    #[test]
    fn links_enumeration() {
        let mut topology = Topology::new(3);
        topology.add_link(2, 0);
        topology.add_link(1, 2);
        assert_eq!(topology.links(), vec![(0, 2), (1, 2)]);
    }

    #[test]
    fn random_connected_is_connected_and_meets_degree() {
        let mut rng = SimRng::seed_from(11);
        let topology = Topology::random_connected(50, 4.0, &mut rng);
        assert_eq!(topology.len(), 50);
        assert!(topology.is_connected());
        let avg_degree = 2.0 * topology.link_count() as f64 / 50.0;
        assert!(avg_degree >= 3.5, "average degree {avg_degree}");
    }

    #[test]
    fn degenerate_sizes() {
        assert!(Topology::new(0).is_empty());
        assert!(Topology::new(0).is_connected());
        assert!(Topology::ring(1).is_connected());
        assert_eq!(Topology::ring(1).link_count(), 0);
        let mut rng = SimRng::seed_from(1);
        assert_eq!(Topology::random_connected(1, 2.0, &mut rng).link_count(), 0);
        assert!(Topology::new(3).reachable_from(99).is_empty());
    }
}
