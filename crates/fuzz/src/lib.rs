//! Seeded, deterministic fuzz harness for the ERASMUS wire-frame decoder.
//!
//! The collection batch frame ([`erasmus_core::encoding`]) is the one spot
//! where the verifier side parses bytes an adversary controls: everything a
//! compromised network (or prover) sends reaches
//! [`erasmus_core::FrameView::parse`] before any cryptography runs. This
//! crate promotes that decoder to a first-class hot path with its own fuzz
//! harness — pure `std`, seeded by [`erasmus_sim::SimRng`], reproducible
//! from a single `u64`, and free of any crates.io dependency so it runs in
//! the offline build environment and in CI.
//!
//! Every iteration generates a *valid* frame (real devices, real MACs),
//! applies one surgical mutation — truncation, extension, bit flips,
//! length-field lies, duplicated or reordered records, zeroed regions —
//! and checks the **decoder contract**:
//!
//! 1. **No panic, no over-read.** The decoder either accepts or returns a
//!    structured [`erasmus_core::DecodeError`]; a panic crashes the harness, which is the
//!    failure signal. Accepted frames must re-encode to the exact input
//!    bytes (the codec is canonical), which rules out silent over- or
//!    under-reads.
//! 2. **Differential agreement.** An independent model decoder — written
//!    against the documented wire format with explicit checked arithmetic,
//!    sharing no code with the real one — must agree byte-for-byte:
//!    accept/reject, the [`DecodeErrorKind`], and the failure offset.
//! 3. **Owned/zero-copy agreement.** [`decode_collection_batch`] and
//!    [`FrameView::parse`] must accept and reject exactly the same inputs.
//! 4. **MAC forgery check.** Any decoded measurement that *verifies* under
//!    its device's key must be byte-identical to a measurement the
//!    generator actually produced — mutations may truncate evidence, but
//!    they must never mint new valid evidence.
//!
//! The hub crash-recovery snapshot ([`erasmus_core::decode_hub_snapshot`])
//! is held to the same standard by [`check_snapshot_contract`] and the
//! [`FuzzSession::run_snapshots`] loop: a snapshot file is
//! attacker-reachable bytes too, and a hub restored from one must be
//! byte-canonical so recovery cannot drift. The snapshot side has its own
//! differential oracle, [`model_decode_snapshot`], which re-derives every
//! v2 compact-history rule — retention-mode/capacity consistency, rollup
//! conservation (`evictions + resident == entries`,
//! `healthy + compromised + forged == entries`), ring-capacity bounds, and
//! the hash-chain fold (`head == fold(chain, resident entries)` via
//! [`erasmus_core::extend_digest`]) — independently of the real decoder.
//!
//! The `frame_fuzz` binary drives [`FuzzSession::run`] and
//! [`FuzzSession::run_snapshots`] for a bounded, seeded iteration budget
//! and replays the committed regression corpus (`crates/fuzz/corpus/*.bin`;
//! `snap-*.bin` files route to the snapshot contract) on every run; CI
//! pins both.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use erasmus_core::{
    decode_collection_batch, decode_hub_snapshot, encode_collection_batch, encode_hub_snapshot,
    encode_measurement, extend_digest, CollectionResponse, DecodeErrorKind, DeviceId, FrameView,
    Measurement, DIGEST_LEN, MAX_BATCH_RESPONSES, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
use erasmus_crypto::{Digest, KeyedMac, MacAlgorithm, Sha256, MAX_TAG_LEN};
use erasmus_sim::{SimDuration, SimRng, SimTime};

/// What one input did to the decoder, per the contract checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// The frame validated; carries the response and measurement counts.
    Accepted {
        /// Response records in the frame.
        responses: usize,
        /// Measurement records across all responses.
        measurements: usize,
    },
    /// The frame was rejected with this contract-rule kind.
    Rejected(DecodeErrorKind),
}

/// A decoder-contract violation: the bug report the harness exists to
/// produce. Carries everything needed to reproduce the failure offline.
#[derive(Debug, Clone)]
pub struct ContractViolation {
    /// Which contract rule broke.
    pub rule: String,
    /// The offending input, hex-encoded for replay.
    pub input_hex: String,
}

impl ContractViolation {
    fn new(rule: impl Into<String>, input: &[u8]) -> Self {
        Self {
            rule: rule.into(),
            input_hex: hex(input),
        }
    }
}

impl fmt::Display for ContractViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decoder contract violated: {}\n  input ({} bytes): {}",
            self.rule,
            self.input_hex.len() / 2,
            self.input_hex
        )
    }
}

impl std::error::Error for ContractViolation {}

fn hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for byte in bytes {
        out.push_str(&format!("{byte:02x}"));
    }
    out
}

// ---------------------------------------------------------------------------
// Model decoder
// ---------------------------------------------------------------------------

/// Independent reimplementation of the strict frame contract, used as the
/// differential oracle. Shares no code with `erasmus_core::encoding`; every
/// bound is an explicit checked comparison against the documented wire
/// format: `count:u16 | (device:u64 | mcount:u16 | (t:u64 | dlen:u16 |
/// digest | tlen:u16 | tag)*)*`, big-endian, `dlen == 32`,
/// `1 <= tlen <= MAX_TAG_LEN`, `count <= MAX_BATCH_RESPONSES`, no trailing
/// bytes.
///
/// # Errors
///
/// Returns `(kind, offset)` describing the first contract rule the input
/// violates, mirroring [`erasmus_core::DecodeError`].
pub fn model_decode(bytes: &[u8]) -> Result<Verdict, (DecodeErrorKind, usize)> {
    let mut offset = 0usize;
    let count = model_u16(bytes, &mut offset)? as usize;
    if count > MAX_BATCH_RESPONSES {
        return Err((DecodeErrorKind::BatchCount, 0));
    }
    let mut measurements = 0usize;
    for _ in 0..count {
        model_take(bytes, &mut offset, 8)?; // device id
        let mcount = model_u16(bytes, &mut offset)? as usize;
        for _ in 0..mcount {
            model_take(bytes, &mut offset, 8)?; // timestamp
            let dlen = model_u16(bytes, &mut offset)? as usize;
            if dlen != DIGEST_LEN {
                return Err((DecodeErrorKind::DigestLength, offset));
            }
            model_take(bytes, &mut offset, dlen)?;
            let tlen = model_u16(bytes, &mut offset)? as usize;
            if tlen == 0 || tlen > MAX_TAG_LEN {
                return Err((DecodeErrorKind::TagLength, offset));
            }
            model_take(bytes, &mut offset, tlen)?;
            measurements += 1;
        }
    }
    if offset != bytes.len() {
        return Err((DecodeErrorKind::TrailingBytes, offset));
    }
    Ok(Verdict::Accepted {
        responses: count,
        measurements,
    })
}

fn model_take(
    bytes: &[u8],
    offset: &mut usize,
    len: usize,
) -> Result<(), (DecodeErrorKind, usize)> {
    let end = offset
        .checked_add(len)
        .ok_or((DecodeErrorKind::Truncated, *offset))?;
    if end > bytes.len() {
        return Err((DecodeErrorKind::Truncated, *offset));
    }
    *offset = end;
    Ok(())
}

fn model_u16(bytes: &[u8], offset: &mut usize) -> Result<u16, (DecodeErrorKind, usize)> {
    let at = *offset;
    model_take(bytes, offset, 2)?;
    Ok(u16::from_be_bytes([bytes[at], bytes[at + 1]]))
}

fn model_u8(bytes: &[u8], offset: &mut usize) -> Result<u8, (DecodeErrorKind, usize)> {
    let at = *offset;
    model_take(bytes, offset, 1)?;
    Ok(bytes[at])
}

fn model_u32(bytes: &[u8], offset: &mut usize) -> Result<u32, (DecodeErrorKind, usize)> {
    let at = *offset;
    model_take(bytes, offset, 4)?;
    Ok(u32::from_be_bytes([
        bytes[at],
        bytes[at + 1],
        bytes[at + 2],
        bytes[at + 3],
    ]))
}

fn model_u64(bytes: &[u8], offset: &mut usize) -> Result<u64, (DecodeErrorKind, usize)> {
    let at = *offset;
    model_take(bytes, offset, 8)?;
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&bytes[at..at + 8]);
    Ok(u64::from_be_bytes(raw))
}

fn model_digest(bytes: &[u8], offset: &mut usize) -> Result<[u8; 32], (DecodeErrorKind, usize)> {
    let at = *offset;
    model_take(bytes, offset, 32)?;
    let mut digest = [0u8; 32];
    digest.copy_from_slice(&bytes[at..at + 32]);
    Ok(digest)
}

/// Independent reimplementation of the strict v2 hub-snapshot contract,
/// used as the differential oracle for [`erasmus_core::decode_hub_snapshot`].
/// Shares no code with `erasmus_core::encoding`; every bound, ordering rule,
/// conservation law and digest fold is an explicit check against the
/// documented wire layout (see `encode_hub_snapshot_into`): header
/// `magic | version | mode | capacity`, counters, strictly ascending dedup
/// flows/sequences, then per device (ascending ids) the rollup tallies
/// (`healthy + compromised + forged == entries`), optional compromise pair
/// and first timestamp, the sealed chain digest, the head digest (which
/// must equal the chain folded over the resident window via
/// [`erasmus_core::extend_digest`]), and the resident entries (strictly
/// ascending, `evictions + resident == entries`, within the ring capacity,
/// non-empty whenever `entries > 0`).
///
/// Accepted inputs report `(device count, lifetime entry total)` through
/// [`Verdict::Accepted`], matching what [`check_snapshot_contract`] reads
/// off the restored hub.
///
/// # Errors
///
/// Returns `(kind, offset)` describing the first contract rule the input
/// violates, mirroring [`erasmus_core::DecodeError`].
pub fn model_decode_snapshot(bytes: &[u8]) -> Result<Verdict, (DecodeErrorKind, usize)> {
    let mut offset = 0usize;
    let magic = model_u16(bytes, &mut offset)?;
    if magic != SNAPSHOT_MAGIC {
        return Err((DecodeErrorKind::BatchCount, 0));
    }
    let version = model_u8(bytes, &mut offset)?;
    if version != SNAPSHOT_VERSION {
        return Err((DecodeErrorKind::BatchCount, 2));
    }
    let mode_at = offset;
    let mode_byte = model_u8(bytes, &mut offset)?;
    let capacity_at = offset;
    let capacity = model_u32(bytes, &mut offset)?;
    // `None` models unbounded retention; `Some(c)` a ring of capacity c.
    let ring_capacity = match (mode_byte, capacity) {
        (0, 0) => None,
        (0, _) => return Err((DecodeErrorKind::BatchCount, capacity_at)),
        (1, 0) => return Err((DecodeErrorKind::BatchCount, capacity_at)),
        (1, capacity) => Some(capacity as usize),
        _ => return Err((DecodeErrorKind::TagLength, mode_at)),
    };
    for _ in 0..3 {
        model_u64(bytes, &mut offset)?; // ingested, rejected, duplicates
    }

    let flow_count = model_u32(bytes, &mut offset)? as usize;
    let mut previous_flow: Option<u64> = None;
    for _ in 0..flow_count {
        let flow_at = offset;
        let flow = model_u64(bytes, &mut offset)?;
        if previous_flow.is_some_and(|previous| previous >= flow) {
            return Err((DecodeErrorKind::BatchCount, flow_at));
        }
        previous_flow = Some(flow);
        let floor = model_u64(bytes, &mut offset)?;
        let seq_count = model_u32(bytes, &mut offset)? as usize;
        let mut previous_seq: Option<u64> = None;
        for _ in 0..seq_count {
            let seq_at = offset;
            let sequence = model_u64(bytes, &mut offset)?;
            if sequence < floor {
                return Err((DecodeErrorKind::BatchCount, seq_at));
            }
            if previous_seq.is_some_and(|previous| previous >= sequence) {
                return Err((DecodeErrorKind::BatchCount, seq_at));
            }
            previous_seq = Some(sequence);
        }
    }

    let device_count = model_u32(bytes, &mut offset)? as usize;
    let mut previous_device: Option<u64> = None;
    let mut total_entries = 0u64;
    for _ in 0..device_count {
        let device_at = offset;
        let device = model_u64(bytes, &mut offset)?;
        if previous_device.is_some_and(|previous| previous >= device) {
            return Err((DecodeErrorKind::BatchCount, device_at));
        }
        previous_device = Some(device);
        model_take(bytes, &mut offset, 8)?; // collections
        let entries = model_u64(bytes, &mut offset)?;
        let evictions_at = offset;
        let evictions = model_u64(bytes, &mut offset)?;
        if ring_capacity.is_none() && evictions != 0 {
            return Err((DecodeErrorKind::BatchCount, evictions_at));
        }
        let stale_at = offset;
        let stale_discards = model_u64(bytes, &mut offset)?;
        if ring_capacity.is_none() && stale_discards != 0 {
            return Err((DecodeErrorKind::BatchCount, stale_at));
        }
        let healthy_at = offset;
        let healthy = model_u64(bytes, &mut offset)?;
        let compromised = model_u64(bytes, &mut offset)?;
        let forged = model_u64(bytes, &mut offset)?;
        let verdict_sum = healthy
            .checked_add(compromised)
            .and_then(|sum| sum.checked_add(forged));
        if verdict_sum != Some(entries) {
            return Err((DecodeErrorKind::BatchCount, healthy_at));
        }
        let flags_at = offset;
        let flags = model_u8(bytes, &mut offset)?;
        if flags & !1 != 0 {
            return Err((DecodeErrorKind::TagLength, flags_at));
        }
        if flags & 1 != 0 {
            model_u64(bytes, &mut offset)?; // compromise measured timestamp
            model_u64(bytes, &mut offset)?; // compromise detected timestamp
        }
        let first_ts_at = offset;
        let first_timestamp = if entries > 0 {
            Some(model_u64(bytes, &mut offset)?)
        } else {
            None
        };
        let chain_at = offset;
        let chain = model_digest(bytes, &mut offset)?;
        let head_at = offset;
        let head = model_digest(bytes, &mut offset)?;
        let resident_at = offset;
        let resident_count = model_u32(bytes, &mut offset)? as usize;
        if evictions.checked_add(resident_count as u64) != Some(entries) {
            return Err((DecodeErrorKind::BatchCount, resident_at));
        }
        if entries > 0 && resident_count == 0 {
            return Err((DecodeErrorKind::BatchCount, resident_at));
        }
        if ring_capacity.is_some_and(|capacity| resident_count > capacity) {
            return Err((DecodeErrorKind::BatchCount, resident_at));
        }
        let mut folded = chain;
        let mut previous_timestamp: Option<u64> = None;
        let mut oldest_resident: Option<u64> = None;
        for _ in 0..resident_count {
            let entry_at = offset;
            let timestamp = model_u64(bytes, &mut offset)?;
            if previous_timestamp.is_some_and(|previous| previous >= timestamp) {
                return Err((DecodeErrorKind::BatchCount, entry_at));
            }
            previous_timestamp = Some(timestamp);
            if oldest_resident.is_none() {
                oldest_resident = Some(timestamp);
            }
            let collected_at = model_u64(bytes, &mut offset)?;
            let tag_at = offset;
            let tag = model_u8(bytes, &mut offset)?;
            if tag > 2 {
                return Err((DecodeErrorKind::TagLength, tag_at));
            }
            folded = extend_digest(&folded, timestamp, tag, collected_at);
        }
        if let (Some(first), Some(oldest)) = (first_timestamp, oldest_resident) {
            if first > oldest {
                return Err((DecodeErrorKind::BatchCount, first_ts_at));
            }
        }
        if evictions == 0 && chain != [0u8; 32] {
            return Err((DecodeErrorKind::DigestLength, chain_at));
        }
        if folded != head {
            return Err((DecodeErrorKind::DigestLength, head_at));
        }
        total_entries = total_entries.saturating_add(entries);
    }
    if offset != bytes.len() {
        return Err((DecodeErrorKind::TrailingBytes, offset));
    }
    Ok(Verdict::Accepted {
        responses: device_count,
        measurements: total_entries as usize,
    })
}

// ---------------------------------------------------------------------------
// Contract check
// ---------------------------------------------------------------------------

/// Runs every structural contract check against one input.
///
/// This is the corpus-replay entry point: it needs no generator state, so
/// it applies to arbitrary bytes (hand-crafted regression frames included).
/// The MAC forgery check needs the generator's keys and runs in
/// [`FuzzSession::check`] instead.
///
/// # Errors
///
/// Returns the [`ContractViolation`] describing the first broken rule.
pub fn check_contract(bytes: &[u8]) -> Result<Verdict, ContractViolation> {
    let model = model_decode(bytes);
    let real = FrameView::parse(bytes);
    let owned = decode_collection_batch(bytes);

    let verdict = match (&real, &model) {
        (
            Ok(frame),
            Ok(Verdict::Accepted {
                responses,
                measurements,
            }),
        ) => {
            if frame.len() != *responses {
                return Err(ContractViolation::new(
                    format!(
                        "response count mismatch: decoder {} vs model {responses}",
                        frame.len()
                    ),
                    bytes,
                ));
            }
            let decoded: usize = frame.responses().map(|r| r.len()).sum();
            if decoded != *measurements {
                return Err(ContractViolation::new(
                    format!(
                        "measurement count mismatch: decoder {decoded} vs model {measurements}"
                    ),
                    bytes,
                ));
            }
            if frame.frame_len() != bytes.len() {
                return Err(ContractViolation::new(
                    format!(
                        "frame_len {} != input length {}",
                        frame.frame_len(),
                        bytes.len()
                    ),
                    bytes,
                ));
            }
            // Canonicality: accepted bytes re-encode to themselves, which
            // also proves no record was over- or under-read.
            let responses: Vec<CollectionResponse> =
                frame.responses().map(|r| r.to_response()).collect();
            let reencoded = encode_collection_batch(&responses);
            if reencoded != bytes {
                return Err(ContractViolation::new(
                    "accepted frame is not canonical: re-encode differs from input",
                    bytes,
                ));
            }
            Verdict::Accepted {
                responses: responses.len(),
                measurements: decoded,
            }
        }
        (Err(error), Err((kind, offset))) => {
            if error.kind() != *kind {
                return Err(ContractViolation::new(
                    format!(
                        "rejection kind mismatch: decoder {:?} vs model {kind:?}",
                        error.kind()
                    ),
                    bytes,
                ));
            }
            if error.offset() != *offset {
                return Err(ContractViolation::new(
                    format!(
                        "rejection offset mismatch: decoder {} vs model {offset}",
                        error.offset()
                    ),
                    bytes,
                ));
            }
            if error.offset() > bytes.len() {
                return Err(ContractViolation::new(
                    format!(
                        "rejection offset {} beyond input length {}",
                        error.offset(),
                        bytes.len()
                    ),
                    bytes,
                ));
            }
            Verdict::Rejected(*kind)
        }
        (Ok(_), Err((kind, _))) => {
            return Err(ContractViolation::new(
                format!("decoder accepted what the model rejects ({kind:?})"),
                bytes,
            ));
        }
        (Err(error), Ok(_)) => {
            return Err(ContractViolation::new(
                format!(
                    "decoder rejected ({:?}) what the model accepts",
                    error.kind()
                ),
                bytes,
            ));
        }
        // The model signals rejection through Err, never Ok(Rejected).
        (_, Ok(Verdict::Rejected(kind))) => {
            return Err(ContractViolation::new(
                format!("model produced Ok(Rejected({kind:?})) — model bug"),
                bytes,
            ));
        }
    };

    // The owned decoder is a thin wrapper over the view path; the two
    // public entry points must agree on every input.
    match (&verdict, &owned) {
        (Verdict::Accepted { responses, .. }, Ok(decoded)) if decoded.len() == *responses => {}
        (Verdict::Rejected(kind), Err(error)) if error.kind() == *kind => {}
        _ => {
            return Err(ContractViolation::new(
                "owned decode_collection_batch disagrees with FrameView::parse",
                bytes,
            ));
        }
    }
    Ok(verdict)
}

/// Runs the hub-snapshot codec contract against one input.
///
/// The snapshot ([`erasmus_core::decode_hub_snapshot`]) is the second spot
/// where the verifier side parses attacker-reachable bytes: a crash-recovery
/// file an adversary with filesystem access may have damaged or forged. The
/// contract mirrors the frame decoder's:
///
/// 1. **No panic, no over-read.** Accept or structured
///    [`erasmus_core::DecodeError`] with an in-bounds offset — nothing else.
/// 2. **Canonical.** An accepted snapshot re-encodes byte-identically, so
///    recovery state cannot drift across restart cycles.
/// 3. **Deterministic.** Decoding twice restores equal hubs.
/// 4. **Differential agreement.** [`model_decode_snapshot`] — an
///    independent reimplementation of the v2 layout — must reach the same
///    accept/reject verdict, the same restored device/entry totals, and on
///    rejection the same error kind and offset.
///
/// Accepted inputs report the restored hub's device count and total entry
/// count through [`Verdict::Accepted`], reusing the frame verdict shape so
/// snapshot replays share the [`FuzzReport`] histogram.
///
/// # Errors
///
/// Returns the [`ContractViolation`] describing the first broken rule.
pub fn check_snapshot_contract(bytes: &[u8]) -> Result<Verdict, ContractViolation> {
    let model = model_decode_snapshot(bytes);
    match decode_hub_snapshot(bytes) {
        Ok(hub) => {
            match model {
                Ok(Verdict::Accepted {
                    responses,
                    measurements,
                }) if responses == hub.len() && measurements == hub.total_entries() as usize => {}
                Ok(verdict) => {
                    return Err(ContractViolation::new(
                        format!(
                            "decoder accepted ({} devices, {} entries) but model saw {verdict:?}",
                            hub.len(),
                            hub.total_entries()
                        ),
                        bytes,
                    ));
                }
                Err((kind, offset)) => {
                    return Err(ContractViolation::new(
                        format!("decoder accepted but model rejected {kind:?} at {offset}"),
                        bytes,
                    ));
                }
            }
            let reencoded = encode_hub_snapshot(&hub);
            if reencoded != bytes {
                return Err(ContractViolation::new(
                    "accepted snapshot is not canonical: re-encode differs from input",
                    bytes,
                ));
            }
            let again = decode_hub_snapshot(bytes).map_err(|error| {
                ContractViolation::new(
                    format!("snapshot decode is nondeterministic: second pass rejected ({error})"),
                    bytes,
                )
            })?;
            if again != hub {
                return Err(ContractViolation::new(
                    "snapshot decode is nondeterministic: second pass restored a different hub",
                    bytes,
                ));
            }
            Ok(Verdict::Accepted {
                responses: hub.len(),
                measurements: hub.total_entries() as usize,
            })
        }
        Err(error) => {
            if error.offset() > bytes.len() {
                return Err(ContractViolation::new(
                    format!(
                        "snapshot rejection offset {} beyond input length {}",
                        error.offset(),
                        bytes.len()
                    ),
                    bytes,
                ));
            }
            match model {
                Err((kind, offset)) if kind == error.kind() && offset == error.offset() => {}
                Err((kind, offset)) => {
                    return Err(ContractViolation::new(
                        format!(
                            "decoder rejected {:?} at {} but model rejected {kind:?} at {offset}",
                            error.kind(),
                            error.offset()
                        ),
                        bytes,
                    ));
                }
                Ok(verdict) => {
                    return Err(ContractViolation::new(
                        format!(
                            "decoder rejected {:?} at {} but model accepted {verdict:?}",
                            error.kind(),
                            error.offset()
                        ),
                        bytes,
                    ));
                }
            }
            Ok(Verdict::Rejected(error.kind()))
        }
    }
}

// ---------------------------------------------------------------------------
// Generator + mutators
// ---------------------------------------------------------------------------

/// The mutation families the harness applies to valid frames. Each targets
/// a distinct way real-world corruption (or a hostile prover) can bend the
/// wire format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutation {
    /// Frame passed through untouched: pins the all-valid path.
    Identity,
    /// Bytes cut off the end (or the whole frame).
    Truncate,
    /// Random bytes appended after a complete frame.
    Extend,
    /// A single bit flipped anywhere — MACs, digests, device ids, counts.
    BitFlip,
    /// A big-endian u16 written over a random even-ish offset: the
    /// length-field lie (digest length, tag length, counts).
    LengthLie,
    /// The batch count field specifically inflated or deflated, so the
    /// frame claims more or fewer records than it carries.
    CountLie,
    /// A tail chunk of the frame duplicated in place (duplicated records).
    DuplicateTail,
    /// Two regions of the frame swapped (reordered records).
    SwapRegions,
    /// A random region zeroed.
    ZeroRegion,
}

impl Mutation {
    /// Every mutation family, in application order of the round-robin.
    pub const ALL: [Mutation; 9] = [
        Mutation::Identity,
        Mutation::Truncate,
        Mutation::Extend,
        Mutation::BitFlip,
        Mutation::LengthLie,
        Mutation::CountLie,
        Mutation::DuplicateTail,
        Mutation::SwapRegions,
        Mutation::ZeroRegion,
    ];
}

impl fmt::Display for Mutation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Mutation::Identity => "identity",
            Mutation::Truncate => "truncate",
            Mutation::Extend => "extend",
            Mutation::BitFlip => "bit-flip",
            Mutation::LengthLie => "length-lie",
            Mutation::CountLie => "count-lie",
            Mutation::DuplicateTail => "duplicate-tail",
            Mutation::SwapRegions => "swap-regions",
            Mutation::ZeroRegion => "zero-region",
        };
        f.write_str(name)
    }
}

/// Per-kind rejection histogram plus accept counts for one fuzz run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FuzzReport {
    /// Inputs fed to the decoder (corpus replays included when driven by
    /// the binary).
    pub iterations: u64,
    /// Inputs the decoder accepted.
    pub accepted: u64,
    /// Inputs rejected, by [`DecodeErrorKind`] (indexed in
    /// [`DecodeErrorKind::ALL`] order).
    pub rejected: [u64; DecodeErrorKind::ALL.len()],
}

impl FuzzReport {
    /// Total rejected inputs.
    pub fn rejected_total(&self) -> u64 {
        self.rejected.iter().sum()
    }

    /// Folds one verdict into the histogram.
    pub fn record(&mut self, verdict: &Verdict) {
        self.iterations += 1;
        match verdict {
            Verdict::Accepted { .. } => self.accepted += 1,
            Verdict::Rejected(kind) => {
                let index = DecodeErrorKind::ALL
                    .iter()
                    .position(|k| k == kind)
                    .expect("every kind is in ALL");
                self.rejected[index] += 1;
            }
        }
    }

    /// The rejection kinds this run has *not* produced. Empty means full
    /// coverage of the decoder's error surface.
    pub fn missing_kinds(&self) -> Vec<DecodeErrorKind> {
        DecodeErrorKind::ALL
            .iter()
            .zip(&self.rejected)
            .filter(|(_, &count)| count == 0)
            .map(|(&kind, _)| kind)
            .collect()
    }
}

/// A seeded fuzzing session: valid-frame generator, mutators, and the MAC
/// forgery oracle. Two sessions with the same seed produce byte-identical
/// inputs in the same order.
#[derive(Debug)]
pub struct FuzzSession {
    rng: SimRng,
    /// Per-device keyed MAC state, for the forgery oracle.
    keys: BTreeMap<u64, KeyedMac>,
    /// Every `(device, encoded measurement)` the generator ever produced:
    /// the set of evidence a mutated frame is allowed to verify.
    pristine: BTreeSet<(u64, Vec<u8>)>,
    round: u64,
}

impl FuzzSession {
    /// Creates a session reproducible from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: SimRng::seed_from(seed),
            keys: BTreeMap::new(),
            pristine: BTreeSet::new(),
            round: 0,
        }
    }

    /// Generates one valid frame: a handful of devices with real derived
    /// keys, each carrying genuinely MAC'd measurements over random memory.
    pub fn generate(&mut self) -> Vec<u8> {
        let response_count = self.rng.gen_range(0, 5) as usize;
        let mut responses = Vec::with_capacity(response_count);
        for _ in 0..response_count {
            let device = self.rng.gen_range(0, 64);
            let algorithm = MacAlgorithm::ALL[self.rng.gen_range(0, 3) as usize];
            let keyed = self.keys.entry(device).or_insert_with(|| {
                let mut key = [0u8; 32];
                key[..8].copy_from_slice(&device.to_be_bytes());
                key[8..16].copy_from_slice(&0x6672_616d_6566_757au64.to_be_bytes());
                algorithm.with_key(&key)
            });
            let measurement_count = self.rng.gen_range(0, 4) as usize;
            let mut measurements = Vec::with_capacity(measurement_count);
            for _ in 0..measurement_count {
                let mut memory = vec![0u8; self.rng.gen_range(1, 128) as usize];
                self.rng.fill_bytes(&mut memory);
                let timestamp = SimTime::from_nanos(self.rng.next_u64() >> 16);
                let digest = Sha256::digest(&memory);
                let input = mac_input(timestamp, &digest);
                let measurement = Measurement::from_parts(timestamp, digest, keyed.mac(&input));
                self.pristine
                    .insert((device, encode_measurement(&measurement)));
                measurements.push(measurement);
            }
            responses.push(CollectionResponse {
                device: DeviceId::new(device),
                measurements,
                prover_time: SimDuration::ZERO,
            });
        }
        encode_collection_batch(&responses)
    }

    /// Applies `mutation` to `frame` in place, drawing every choice from
    /// the session RNG.
    pub fn mutate(&mut self, frame: &mut Vec<u8>, mutation: Mutation) {
        match mutation {
            Mutation::Identity => {}
            Mutation::Truncate => {
                let keep = self.rng.gen_range(0, frame.len() as u64 + 1) as usize;
                frame.truncate(keep);
            }
            Mutation::Extend => {
                let extra = self.rng.gen_range(1, 16) as usize;
                let mut tail = vec![0u8; extra];
                self.rng.fill_bytes(&mut tail);
                frame.extend_from_slice(&tail);
            }
            Mutation::BitFlip => {
                if frame.is_empty() {
                    return;
                }
                let at = self.rng.gen_range(0, frame.len() as u64) as usize;
                let bit = self.rng.gen_range(0, 8) as u8;
                frame[at] ^= 1 << bit;
            }
            Mutation::LengthLie => {
                if frame.len() < 2 {
                    return;
                }
                let at = self.rng.gen_range(0, frame.len() as u64 - 1) as usize;
                let lie = (self.rng.next_u64() & 0xffff) as u16;
                frame[at..at + 2].copy_from_slice(&lie.to_be_bytes());
            }
            Mutation::CountLie => {
                if frame.len() < 2 {
                    return;
                }
                // Half the draws stay near-plausible (off-by-few), half go
                // wild (way past MAX_BATCH_RESPONSES).
                let lie = if self.rng.gen_bool(0.5) {
                    self.rng.gen_range(0, 8) as u16
                } else {
                    (MAX_BATCH_RESPONSES as u16).saturating_add(self.rng.next_u64() as u16 | 1)
                };
                frame[0..2].copy_from_slice(&lie.to_be_bytes());
            }
            Mutation::DuplicateTail => {
                if frame.is_empty() {
                    return;
                }
                let from = self.rng.gen_range(0, frame.len() as u64) as usize;
                let chunk = frame[from..].to_vec();
                frame.extend_from_slice(&chunk);
            }
            Mutation::SwapRegions => {
                if frame.len() < 4 {
                    return;
                }
                let half = frame.len() / 2;
                let a = self.rng.gen_range(0, half as u64) as usize;
                let b = half + self.rng.gen_range(0, (frame.len() - half) as u64) as usize;
                let len = self
                    .rng
                    .gen_range(1, (frame.len() - b).min(b - a).max(1) as u64 + 1)
                    as usize;
                for i in 0..len {
                    frame.swap(a + i, b + i);
                }
            }
            Mutation::ZeroRegion => {
                if frame.is_empty() {
                    return;
                }
                let at = self.rng.gen_range(0, frame.len() as u64) as usize;
                let len = self.rng.gen_range(1, (frame.len() - at) as u64 + 1) as usize;
                frame[at..at + len].iter_mut().for_each(|b| *b = 0);
            }
        }
    }

    /// Runs the full contract check — structural rules plus the MAC
    /// forgery oracle — against one (possibly mutated) input.
    ///
    /// # Errors
    ///
    /// Returns the [`ContractViolation`] describing the first broken rule.
    pub fn check(&self, bytes: &[u8]) -> Result<Verdict, ContractViolation> {
        let verdict = check_contract(bytes)?;
        if let Verdict::Accepted { .. } = verdict {
            let frame = FrameView::parse(bytes).expect("checked accepted above");
            for response in frame.responses() {
                let device = response.device().value();
                let Some(keyed) = self.keys.get(&device) else {
                    continue; // mutated device id: no key, nothing can verify
                };
                for view in response.measurements() {
                    let measurement = view.to_measurement();
                    if !measurement.verify_keyed(keyed) {
                        continue; // damaged evidence is the verifier's job
                    }
                    let encoded = encode_measurement(&measurement);
                    if !self.pristine.contains(&(device, encoded)) {
                        return Err(ContractViolation::new(
                            format!(
                                "MAC forgery: device {device} carries a verifying \
                                 measurement the generator never produced"
                            ),
                            bytes,
                        ));
                    }
                }
            }
        }
        Ok(verdict)
    }

    /// One generate → mutate → check iteration; the mutation family
    /// round-robins so every family gets equal airtime.
    ///
    /// # Errors
    ///
    /// Returns the [`ContractViolation`] describing the first broken rule.
    pub fn step(&mut self) -> Result<Verdict, ContractViolation> {
        let mutation = Mutation::ALL[(self.round as usize) % Mutation::ALL.len()];
        self.round += 1;
        let mut frame = self.generate();
        self.mutate(&mut frame, mutation);
        self.check(&frame)
    }

    /// Runs `iterations` fuzz steps, accumulating the verdict histogram.
    ///
    /// # Errors
    ///
    /// Stops at — and returns — the first [`ContractViolation`].
    pub fn run(&mut self, iterations: u64) -> Result<FuzzReport, ContractViolation> {
        let mut report = FuzzReport::default();
        for _ in 0..iterations {
            let verdict = self.step()?;
            report.record(&verdict);
        }
        Ok(report)
    }

    /// Generates one valid v2 hub snapshot, built byte-by-byte against the
    /// documented layout (so the generator shares no code with the encoder
    /// under test): a coin-flip between unbounded and ring retention,
    /// random counters, dedup windows with strictly ascending flows and
    /// sequences, then per device a simulated lifetime timeline split into
    /// the sealed (evicted) prefix — folded into the chain digest — and the
    /// resident window, with rollup tallies and the head digest derived
    /// from the same timeline.
    pub fn generate_snapshot(&mut self) -> Vec<u8> {
        // None models unbounded retention; Some(c) a ring of capacity c.
        let ring_capacity = if self.rng.gen_bool(0.5) {
            Some(1 + self.rng.gen_range(0, 4) as usize)
        } else {
            None
        };
        let mut out = Vec::new();
        out.extend_from_slice(&SNAPSHOT_MAGIC.to_be_bytes());
        out.push(SNAPSHOT_VERSION);
        match ring_capacity {
            None => {
                out.push(0);
                out.extend_from_slice(&0u32.to_be_bytes());
            }
            Some(capacity) => {
                out.push(1);
                out.extend_from_slice(&(capacity as u32).to_be_bytes());
            }
        }
        for _ in 0..3 {
            // ingested, rejected, duplicates
            out.extend_from_slice(&(self.rng.next_u64() >> 32).to_be_bytes());
        }
        let flows = self.rng.gen_range(0, 4);
        out.extend_from_slice(&(flows as u32).to_be_bytes());
        let mut flow = 0u64;
        for _ in 0..flows {
            flow += 1 + self.rng.gen_range(0, 1 << 20);
            out.extend_from_slice(&flow.to_be_bytes());
            let floor = self.rng.gen_range(0, 1 << 16);
            out.extend_from_slice(&floor.to_be_bytes());
            let seqs = self.rng.gen_range(0, 5);
            out.extend_from_slice(&(seqs as u32).to_be_bytes());
            let mut sequence = floor;
            for i in 0..seqs {
                sequence += if i == 0 { 0 } else { 1 } + self.rng.gen_range(0, 64);
                out.extend_from_slice(&sequence.to_be_bytes());
            }
        }
        let devices = self.rng.gen_range(0, 4);
        out.extend_from_slice(&(devices as u32).to_be_bytes());
        let mut device = 0u64;
        for _ in 0..devices {
            device += 1 + self.rng.gen_range(0, 64);
            out.extend_from_slice(&device.to_be_bytes());
            out.extend_from_slice(&self.rng.gen_range(0, 1 << 20).to_be_bytes()); // collections

            // Simulate the device's full lifetime: every entry ever
            // ingested, in timestamp order. The suffix that fits the
            // retention window stays resident; the prefix is sealed into
            // the chain digest exactly as eviction would have done.
            let total = self.rng.gen_range(0, 6) as usize;
            let mut timeline = Vec::with_capacity(total);
            let mut timestamp = self.rng.gen_range(0, 1 << 30);
            for _ in 0..total {
                timestamp += 1 + self.rng.gen_range(0, 1 << 20);
                let collected_at = self.rng.gen_range(0, 1 << 30);
                let tag = self.rng.gen_range(0, 3) as u8;
                timeline.push((timestamp, collected_at, tag));
            }
            let resident = match ring_capacity {
                None => total,
                Some(capacity) => total.min(capacity),
            };
            let evicted = total - resident;

            out.extend_from_slice(&(total as u64).to_be_bytes()); // entries
            out.extend_from_slice(&(evicted as u64).to_be_bytes()); // evictions
            let stale_discards = match ring_capacity {
                None => 0,
                Some(_) => self.rng.gen_range(0, 3),
            };
            out.extend_from_slice(&stale_discards.to_be_bytes());
            for wanted in 0..3u8 {
                let tally = timeline.iter().filter(|entry| entry.2 == wanted).count();
                out.extend_from_slice(&(tally as u64).to_be_bytes());
            }
            let compromise = timeline.iter().find(|entry| entry.2 != 0);
            out.push(u8::from(compromise.is_some()));
            if let Some(&(measured, detected, _)) = compromise {
                out.extend_from_slice(&measured.to_be_bytes());
                out.extend_from_slice(&detected.to_be_bytes());
            }
            if let Some(&(first, _, _)) = timeline.first() {
                out.extend_from_slice(&first.to_be_bytes());
            }
            let mut chain = [0u8; 32];
            for &(timestamp, collected_at, tag) in &timeline[..evicted] {
                chain = extend_digest(&chain, timestamp, tag, collected_at);
            }
            out.extend_from_slice(&chain);
            let mut head = chain;
            for &(timestamp, collected_at, tag) in &timeline[evicted..] {
                head = extend_digest(&head, timestamp, tag, collected_at);
            }
            out.extend_from_slice(&head);
            out.extend_from_slice(&(resident as u32).to_be_bytes());
            for &(timestamp, collected_at, tag) in &timeline[evicted..] {
                out.extend_from_slice(&timestamp.to_be_bytes());
                out.extend_from_slice(&collected_at.to_be_bytes());
                out.push(tag);
            }
        }
        out
    }

    /// One generate → mutate → check iteration against the snapshot codec,
    /// round-robining the same mutation families as the frame loop.
    ///
    /// # Errors
    ///
    /// Returns the [`ContractViolation`] describing the first broken rule.
    pub fn snapshot_step(&mut self) -> Result<Verdict, ContractViolation> {
        let mutation = Mutation::ALL[(self.round as usize) % Mutation::ALL.len()];
        self.round += 1;
        let mut snapshot = self.generate_snapshot();
        self.mutate(&mut snapshot, mutation);
        check_snapshot_contract(&snapshot)
    }

    /// Runs `iterations` snapshot fuzz steps, accumulating the histogram.
    ///
    /// # Errors
    ///
    /// Stops at — and returns — the first [`ContractViolation`].
    pub fn run_snapshots(&mut self, iterations: u64) -> Result<FuzzReport, ContractViolation> {
        let mut report = FuzzReport::default();
        for _ in 0..iterations {
            let verdict = self.snapshot_step()?;
            report.record(&verdict);
        }
        Ok(report)
    }
}

/// The canonical MAC input `t || H(mem_t)`, mirrored from
/// `erasmus_core::Measurement` (crate-private there) so the generator can
/// MAC measurements without a full `Prover`.
fn mac_input(timestamp: SimTime, digest: &[u8; DIGEST_LEN]) -> Vec<u8> {
    let mut input = Vec::with_capacity(8 + DIGEST_LEN);
    input.extend_from_slice(&timestamp.as_nanos().to_be_bytes());
    input.extend_from_slice(digest);
    input
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_frames_are_valid_and_canonical() {
        let mut session = FuzzSession::new(7);
        for _ in 0..50 {
            let frame = session.generate();
            let verdict = session
                .check(&frame)
                .expect("pristine frame violates contract");
            assert!(matches!(verdict, Verdict::Accepted { .. }), "{verdict:?}");
        }
    }

    #[test]
    fn sessions_are_deterministic() {
        let run = |seed| {
            let mut session = FuzzSession::new(seed);
            session.run(300).expect("contract holds")
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn short_fuzz_run_holds_the_contract_and_rejects_plenty() {
        let mut session = FuzzSession::new(42);
        let report = session.run(600).expect("contract holds");
        assert_eq!(report.iterations, 600);
        assert!(report.accepted > 0, "no mutation left a frame valid");
        assert!(
            report.rejected_total() > report.iterations / 4,
            "mutations barely perturbed the format: {report:?}"
        );
    }

    #[test]
    fn model_rejects_each_kind_at_the_documented_offsets() {
        // Truncated: an empty input dies reading the count at offset 0.
        assert_eq!(model_decode(&[]), Err((DecodeErrorKind::Truncated, 0)));
        // BatchCount: 2047 > MAX_BATCH_RESPONSES, pinned to offset 0.
        assert_eq!(
            model_decode(&[0x07, 0xff]),
            Err((DecodeErrorKind::BatchCount, 0))
        );
        // A frame claiming one response but ending after the device id.
        let mut frame = vec![0x00, 0x01];
        frame.extend_from_slice(&42u64.to_be_bytes());
        assert_eq!(model_decode(&frame), Err((DecodeErrorKind::Truncated, 10)));
        // DigestLength: mcount 1, timestamp, then dlen = 16.
        frame.extend_from_slice(&1u16.to_be_bytes());
        frame.extend_from_slice(&9u64.to_be_bytes());
        frame.extend_from_slice(&16u16.to_be_bytes());
        assert_eq!(
            model_decode(&frame),
            Err((DecodeErrorKind::DigestLength, 22))
        );
        // TagLength: fix the digest, lie about the tag.
        frame.truncate(20);
        frame.extend_from_slice(&(DIGEST_LEN as u16).to_be_bytes());
        frame.extend_from_slice(&[0xaa; DIGEST_LEN]);
        frame.extend_from_slice(&0u16.to_be_bytes());
        assert_eq!(model_decode(&frame), Err((DecodeErrorKind::TagLength, 56)));
        // TrailingBytes: a valid empty frame plus one stray byte.
        assert_eq!(
            model_decode(&[0x00, 0x00, 0x99]),
            Err((DecodeErrorKind::TrailingBytes, 2))
        );
        // And every one of those inputs agrees with the real decoder.
        for input in [vec![], vec![0x07, 0xff], vec![0x00, 0x00, 0x99], frame] {
            check_contract(&input).expect("model and decoder agree");
        }
    }

    #[test]
    fn every_mutation_family_is_exercised() {
        let mut session = FuzzSession::new(1);
        // One full round-robin over the families.
        for expected in Mutation::ALL {
            let applied = Mutation::ALL[(session.round as usize) % Mutation::ALL.len()];
            assert_eq!(applied, expected);
            session.step().expect("contract holds");
        }
    }

    #[test]
    fn forgery_oracle_accepts_duplicated_pristine_records() {
        // Duplicating a whole valid response keeps every measurement
        // pristine; the oracle must not flag it.
        let mut session = FuzzSession::new(5);
        let frame = loop {
            let frame = session.generate();
            let parsed = FrameView::parse(&frame).expect("valid");
            if !parsed.is_empty() && !frame[2..].is_empty() {
                break frame;
            }
        };
        let parsed = FrameView::parse(&frame).expect("valid");
        let mut responses: Vec<CollectionResponse> =
            parsed.responses().map(|r| r.to_response()).collect();
        responses.push(responses[0].clone());
        let doubled = encode_collection_batch(&responses);
        let verdict = session
            .check(&doubled)
            .expect("duplicates are not forgeries");
        assert!(matches!(verdict, Verdict::Accepted { .. }));
    }

    #[test]
    fn generated_snapshots_are_valid_and_canonical() {
        let mut session = FuzzSession::new(11);
        for _ in 0..50 {
            let snapshot = session.generate_snapshot();
            let verdict = session_check(&snapshot);
            assert!(matches!(verdict, Verdict::Accepted { .. }), "{verdict:?}");
        }
    }

    fn session_check(snapshot: &[u8]) -> Verdict {
        check_snapshot_contract(snapshot).expect("pristine snapshot violates contract")
    }

    #[test]
    fn snapshot_fuzz_run_holds_the_contract_and_rejects_plenty() {
        let mut session = FuzzSession::new(42);
        let report = session.run_snapshots(600).expect("contract holds");
        assert_eq!(report.iterations, 600);
        assert!(report.accepted > 0, "no mutation left a snapshot valid");
        assert!(
            report.rejected_total() > report.iterations / 4,
            "mutations barely perturbed the snapshot format: {report:?}"
        );
    }

    #[test]
    fn snapshot_contract_rejects_the_obvious_forgeries() {
        let mut session = FuzzSession::new(3);
        let snapshot = session.generate_snapshot();
        // Wrong magic, wrong version, truncation, trailing garbage: all
        // must come back Rejected, never a hub and never a panic.
        let mut bad_magic = snapshot.clone();
        bad_magic[0] ^= 0x01;
        assert!(matches!(
            check_snapshot_contract(&bad_magic).expect("contract holds"),
            Verdict::Rejected(_)
        ));
        let mut bad_version = snapshot.clone();
        bad_version[2] = SNAPSHOT_VERSION + 1;
        assert!(matches!(
            check_snapshot_contract(&bad_version).expect("contract holds"),
            Verdict::Rejected(_)
        ));
        for cut in 0..snapshot.len() {
            assert!(matches!(
                check_snapshot_contract(&snapshot[..cut]).expect("contract holds"),
                Verdict::Rejected(_)
            ));
        }
        let mut padded = snapshot.clone();
        padded.push(0);
        assert!(matches!(
            check_snapshot_contract(&padded).expect("contract holds"),
            Verdict::Rejected(_)
        ));
    }

    #[test]
    fn snapshot_contract_rejects_compact_history_forgeries() {
        let mut session = FuzzSession::new(9);
        // Find a generated snapshot with at least one lifetime entry so
        // the digest and tally forgeries have something to bite on.
        let snapshot = loop {
            let candidate = session.generate_snapshot();
            if let Verdict::Accepted { measurements, .. } = session_check(&candidate) {
                if measurements > 0 {
                    break candidate;
                }
            }
        };
        // Unknown retention-mode tag (header layout: magic u16, version,
        // mode at offset 3, capacity u32 at offset 4).
        let mut bad_mode = snapshot.clone();
        bad_mode[3] = 2;
        assert_eq!(
            check_snapshot_contract(&bad_mode).expect("contract holds"),
            Verdict::Rejected(DecodeErrorKind::TagLength)
        );
        // Mode/capacity inconsistency: flipping the mode bit turns a valid
        // header into either "unbounded with a capacity" or "ring of zero".
        let mut bad_capacity = snapshot.clone();
        bad_capacity[3] ^= 1;
        assert_eq!(
            check_snapshot_contract(&bad_capacity).expect("contract holds"),
            Verdict::Rejected(DecodeErrorKind::BatchCount)
        );
        // Corrupting the final byte lands in the last device's resident
        // region; the verdict-tag bound, entry ordering, conservation law
        // or chain fold must catch it — never an accept.
        let mut bad_tail = snapshot;
        let last = bad_tail.len() - 1;
        bad_tail[last] ^= 0x40;
        assert!(matches!(
            check_snapshot_contract(&bad_tail).expect("contract holds"),
            Verdict::Rejected(_)
        ));
    }

    #[test]
    fn kind_coverage_reporting_spots_gaps() {
        let mut report = FuzzReport::default();
        assert_eq!(report.missing_kinds().len(), DecodeErrorKind::ALL.len());
        for kind in DecodeErrorKind::ALL {
            report.record(&Verdict::Rejected(kind));
        }
        assert!(report.missing_kinds().is_empty());
        assert_eq!(report.rejected_total(), DecodeErrorKind::ALL.len() as u64);
    }
}
