//! `snap_corpus` — regenerates the committed hub-snapshot regression
//! corpus (`crates/fuzz/corpus/snap-*.bin`).
//!
//! Every corpus entry is built byte-by-byte against the documented v2
//! snapshot layout — never through `encode_hub_snapshot` — so the corpus
//! stays an independent witness of the wire format: if the encoder drifts,
//! replaying these bytes catches it. Accept entries exercise the happy
//! paths (empty hub, populated unbounded hub, ring hub with a wrapped
//! window and a sealed chain); each reject entry isolates one contract
//! rule — header consistency, dedup/device ordering, rollup conservation
//! (`healthy + compromised + forged == entries`,
//! `evictions + resident == entries`), ring-capacity bounds, and the
//! hash-chain folds — by corrupting exactly the field that rule guards.
//!
//! The tool is self-checking: before writing a file it runs the bytes
//! through [`erasmus_fuzz::check_snapshot_contract`] and fails unless the
//! verdict (accept, or reject with the expected
//! [`erasmus_core::DecodeErrorKind`]) matches. Deterministic output: the
//! same source produces byte-identical files, so regeneration diffs are
//! meaningful.
//!
//! Usage:
//!
//! ```text
//! snap_corpus             # rewrite crates/fuzz/corpus/snap-*.bin
//! snap_corpus --dir DIR   # write the corpus somewhere else
//! ```
//!
//! Exit codes: 0 — corpus written and verified; 1 — a generated entry did
//! not produce its expected verdict; 2 — usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use erasmus_core::{extend_digest, DecodeErrorKind, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};
use erasmus_fuzz::{check_snapshot_contract, Verdict};

/// One dedup window: flow id, sequence floor, retained sequences.
struct Flow {
    id: u64,
    floor: u64,
    seqs: Vec<u64>,
}

/// One device record spec: the device's full lifetime timeline of
/// `(timestamp, collected_at, verdict tag)` entries plus how long a suffix
/// stays resident; the prefix is sealed into the chain digest exactly as
/// ring eviction would have done.
struct Device {
    id: u64,
    collections: u64,
    timeline: Vec<(u64, u64, u8)>,
    resident: usize,
    stale: u64,
}

/// Byte offsets of the fields the reject entries corrupt, recorded while
/// the device record is written.
#[derive(Debug, Default, Clone, Copy)]
struct FieldAt {
    evictions: usize,
    stale: usize,
    healthy: usize,
    flags: usize,
    first_timestamp: usize,
    chain: usize,
    head: usize,
    resident: usize,
    first_entry: usize,
}

fn put_u64(out: &mut Vec<u8>, value: u64) {
    out.extend_from_slice(&value.to_be_bytes());
}

fn put_u32(out: &mut Vec<u8>, value: u32) {
    out.extend_from_slice(&value.to_be_bytes());
}

/// Builds one snapshot against the documented layout, returning the bytes
/// and the per-device field offsets for surgical corruption.
fn build(mode: u8, capacity: u32, flows: &[Flow], devices: &[Device]) -> (Vec<u8>, Vec<FieldAt>) {
    let mut out = Vec::new();
    out.extend_from_slice(&SNAPSHOT_MAGIC.to_be_bytes());
    out.push(SNAPSHOT_VERSION);
    out.push(mode);
    put_u32(&mut out, capacity);
    for counter in [120, 3, 2] {
        // ingested, rejected, duplicates
        put_u64(&mut out, counter);
    }
    put_u32(&mut out, flows.len() as u32);
    for flow in flows {
        put_u64(&mut out, flow.id);
        put_u64(&mut out, flow.floor);
        put_u32(&mut out, flow.seqs.len() as u32);
        for &seq in &flow.seqs {
            put_u64(&mut out, seq);
        }
    }
    put_u32(&mut out, devices.len() as u32);
    let mut offsets = Vec::new();
    for device in devices {
        let mut at = FieldAt::default();
        put_u64(&mut out, device.id);
        put_u64(&mut out, device.collections);
        put_u64(&mut out, device.timeline.len() as u64); // entries
        let evicted = device.timeline.len() - device.resident;
        at.evictions = out.len();
        put_u64(&mut out, evicted as u64);
        at.stale = out.len();
        put_u64(&mut out, device.stale);
        at.healthy = out.len();
        for wanted in 0..3u8 {
            let tally = device
                .timeline
                .iter()
                .filter(|entry| entry.2 == wanted)
                .count();
            put_u64(&mut out, tally as u64);
        }
        at.flags = out.len();
        let compromise = device.timeline.iter().find(|entry| entry.2 != 0);
        out.push(u8::from(compromise.is_some()));
        if let Some(&(measured, detected, _)) = compromise {
            put_u64(&mut out, measured);
            put_u64(&mut out, detected);
        }
        at.first_timestamp = out.len();
        if let Some(&(first, _, _)) = device.timeline.first() {
            put_u64(&mut out, first);
        }
        let mut chain = [0u8; 32];
        for &(timestamp, collected_at, tag) in &device.timeline[..evicted] {
            chain = extend_digest(&chain, timestamp, tag, collected_at);
        }
        at.chain = out.len();
        out.extend_from_slice(&chain);
        let mut head = chain;
        for &(timestamp, collected_at, tag) in &device.timeline[evicted..] {
            head = extend_digest(&head, timestamp, tag, collected_at);
        }
        at.head = out.len();
        out.extend_from_slice(&head);
        at.resident = out.len();
        put_u32(&mut out, device.resident as u32);
        at.first_entry = out.len();
        for &(timestamp, collected_at, tag) in &device.timeline[evicted..] {
            put_u64(&mut out, timestamp);
            put_u64(&mut out, collected_at);
            out.push(tag);
        }
        offsets.push(at);
    }
    (out, offsets)
}

/// The verdict a corpus entry must produce when replayed.
enum Expect {
    Accept,
    Reject(DecodeErrorKind),
}

/// A populated unbounded snapshot: two dedup flows, one device with a
/// mixed-verdict history (so the compromise pair is present), one device
/// with no history yet.
fn populated_unbounded() -> (Vec<u8>, Vec<FieldAt>) {
    build(
        0,
        0,
        &[
            Flow {
                id: 7,
                floor: 3,
                seqs: vec![3, 5, 9],
            },
            Flow {
                id: 12,
                floor: 0,
                seqs: vec![],
            },
        ],
        &[
            Device {
                id: 1,
                collections: 4,
                timeline: vec![(1_000, 1_100, 0), (2_000, 2_100, 1), (3_000, 3_100, 2)],
                resident: 3,
                stale: 0,
            },
            Device {
                id: 9,
                collections: 0,
                timeline: vec![],
                resident: 0,
                stale: 0,
            },
        ],
    )
}

/// A ring snapshot whose window has wrapped: five lifetime entries, two
/// resident, three sealed into the chain, one stale discard.
fn ring_wrapped() -> (Vec<u8>, Vec<FieldAt>) {
    build(
        1,
        2,
        &[Flow {
            id: 4,
            floor: 2,
            seqs: vec![2, 6],
        }],
        &[Device {
            id: 5,
            collections: 9,
            timeline: vec![
                (1_000, 1_500, 0),
                (2_000, 2_500, 0),
                (3_000, 3_500, 1),
                (4_000, 4_500, 0),
                (5_000, 5_500, 2),
            ],
            resident: 2,
            stale: 1,
        }],
    )
}

/// Builds every corpus entry with its expected replay verdict.
fn entries() -> Vec<(&'static str, Vec<u8>, Expect)> {
    use DecodeErrorKind::{BatchCount, DigestLength, TagLength, TrailingBytes, Truncated};

    let (populated, at) = populated_unbounded();
    let (ring, ring_at) = ring_wrapped();
    let d1 = at[0];
    let rd = ring_at[0];

    let mut list: Vec<(&'static str, Vec<u8>, Expect)> = Vec::new();

    // --- accepted shapes ---
    list.push((
        "snap-accept-empty-hub.bin",
        build(0, 0, &[], &[]).0,
        Expect::Accept,
    ));
    list.push((
        "snap-accept-populated.bin",
        populated.clone(),
        Expect::Accept,
    ));
    list.push(("snap-accept-ring-wrapped.bin", ring.clone(), Expect::Accept));

    // --- header rules ---
    let mut bad_magic = populated.clone();
    bad_magic[0] ^= 0xFF;
    list.push((
        "snap-reject-bad-magic.bin",
        bad_magic,
        Expect::Reject(BatchCount),
    ));

    let mut bad_version = populated.clone();
    bad_version[2] = 1; // the pre-compact-history format version
    list.push((
        "snap-reject-bad-version.bin",
        bad_version,
        Expect::Reject(BatchCount),
    ));

    list.push((
        "snap-reject-bad-mode.bin",
        build(2, 0, &[], &[]).0,
        Expect::Reject(TagLength),
    ));
    list.push((
        "snap-reject-unbounded-with-capacity.bin",
        build(0, 2, &[], &[]).0,
        Expect::Reject(BatchCount),
    ));
    list.push((
        "snap-reject-ring-zero-capacity.bin",
        build(1, 0, &[], &[]).0,
        Expect::Reject(BatchCount),
    ));

    // --- ordering rules ---
    list.push((
        "snap-reject-flows-out-of-order.bin",
        build(
            0,
            0,
            &[
                Flow {
                    id: 9,
                    floor: 0,
                    seqs: vec![],
                },
                Flow {
                    id: 9,
                    floor: 0,
                    seqs: vec![],
                },
            ],
            &[],
        )
        .0,
        Expect::Reject(BatchCount),
    ));
    list.push((
        "snap-reject-sequence-below-floor.bin",
        build(
            0,
            0,
            &[Flow {
                id: 4,
                floor: 10,
                seqs: vec![5],
            }],
            &[],
        )
        .0,
        Expect::Reject(BatchCount),
    ));
    let empty_device = |id: u64| Device {
        id,
        collections: 0,
        timeline: vec![],
        resident: 0,
        stale: 0,
    };
    list.push((
        "snap-reject-devices-out-of-order.bin",
        build(0, 0, &[], &[empty_device(9), empty_device(3)]).0,
        Expect::Reject(BatchCount),
    ));

    // --- framing ---
    let mut trailing = populated.clone();
    trailing.push(0);
    list.push((
        "snap-reject-trailing.bin",
        trailing,
        Expect::Reject(TrailingBytes),
    ));

    let truncated = populated[..d1.head + 10].to_vec(); // mid head-digest
    list.push((
        "snap-reject-truncated.bin",
        truncated,
        Expect::Reject(Truncated),
    ));

    // --- device record rules, each corrupting exactly one field ---
    let mut verdict_tag = populated.clone();
    verdict_tag[d1.first_entry + 16] = 7; // first resident entry's tag byte
    list.push((
        "snap-reject-verdict-tag.bin",
        verdict_tag,
        Expect::Reject(TagLength),
    ));

    let mut bad_flags = populated.clone();
    bad_flags[d1.flags] = 2;
    list.push((
        "snap-reject-bad-flags.bin",
        bad_flags,
        Expect::Reject(TagLength),
    ));

    let mut rollup_sum = populated.clone();
    rollup_sum[d1.healthy + 7] += 1; // healthy + compromised + forged != entries
    list.push((
        "snap-reject-rollup-sum.bin",
        rollup_sum,
        Expect::Reject(BatchCount),
    ));

    let mut phantom_evictions = populated.clone();
    phantom_evictions[d1.evictions + 7] = 1; // unbounded history claims an eviction
    list.push((
        "snap-reject-phantom-evictions.bin",
        phantom_evictions,
        Expect::Reject(BatchCount),
    ));

    let mut phantom_stale = populated.clone();
    phantom_stale[d1.stale + 7] = 1; // unbounded history claims a stale discard
    list.push((
        "snap-reject-phantom-stale.bin",
        phantom_stale,
        Expect::Reject(BatchCount),
    ));

    let mut first_timestamp = populated.clone();
    first_timestamp[d1.first_timestamp..d1.first_timestamp + 8]
        .copy_from_slice(&10_000u64.to_be_bytes()); // later than the oldest resident entry
    list.push((
        "snap-reject-first-timestamp.bin",
        first_timestamp,
        Expect::Reject(BatchCount),
    ));

    let mut chain_mismatch = populated.clone();
    chain_mismatch[d1.chain] ^= 1; // nonzero chain with zero evictions
    list.push((
        "snap-reject-chain-mismatch.bin",
        chain_mismatch,
        Expect::Reject(DigestLength),
    ));

    let mut head_mismatch = populated;
    head_mismatch[d1.head] ^= 1; // head no longer folds from the chain
    list.push((
        "snap-reject-head-mismatch.bin",
        head_mismatch,
        Expect::Reject(DigestLength),
    ));

    let mut conservation = ring;
    conservation[rd.evictions + 7] += 1; // evictions + resident != entries
    list.push((
        "snap-reject-conservation.bin",
        conservation,
        Expect::Reject(BatchCount),
    ));

    list.push((
        "snap-reject-over-capacity.bin",
        build(
            1,
            2,
            &[],
            &[Device {
                id: 3,
                collections: 3,
                timeline: vec![(1_000, 1_100, 0), (2_000, 2_100, 0), (3_000, 3_100, 0)],
                resident: 3, // three resident entries in a ring of two
                stale: 0,
            }],
        )
        .0,
        Expect::Reject(BatchCount),
    ));
    list.push((
        "snap-reject-no-resident.bin",
        build(
            1,
            2,
            &[],
            &[Device {
                id: 3,
                collections: 1,
                timeline: vec![(1_000, 1_100, 0)],
                resident: 0, // one lifetime entry but an empty window
                stale: 0,
            }],
        )
        .0,
        Expect::Reject(BatchCount),
    ));

    list
}

fn usage() -> &'static str {
    "usage: snap_corpus [--dir DIR]\n\
     \n\
     Regenerates the hub-snapshot regression corpus (snap-*.bin), building\n\
     every entry byte-by-byte against the documented v2 layout and\n\
     verifying each against check_snapshot_contract before writing it.\n\
     DIR defaults to this crate's corpus/ directory."
}

fn parse_dir() -> Result<PathBuf, String> {
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--dir" => {
                dir = PathBuf::from(args.next().ok_or("--dir needs a value")?);
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(dir)
}

fn main() -> ExitCode {
    let dir = match parse_dir() {
        Ok(dir) => dir,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("snap_corpus: {message}");
            }
            eprintln!("{}", usage());
            return if message.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    let mut written = 0usize;
    for (name, bytes, expect) in entries() {
        let verdict = match check_snapshot_contract(&bytes) {
            Ok(verdict) => verdict,
            Err(violation) => {
                eprintln!("snap_corpus: {name} violates the contract\n{violation}");
                return ExitCode::FAILURE;
            }
        };
        let matches = match (&verdict, &expect) {
            (Verdict::Accepted { .. }, Expect::Accept) => true,
            (Verdict::Rejected(kind), Expect::Reject(wanted)) => kind == wanted,
            _ => false,
        };
        if !matches {
            eprintln!("snap_corpus: {name} replayed as {verdict:?}, expected a different verdict");
            return ExitCode::FAILURE;
        }
        let path = dir.join(name);
        if let Err(error) = std::fs::write(&path, &bytes) {
            eprintln!("snap_corpus: cannot write {}: {error}", path.display());
            return ExitCode::from(2);
        }
        println!("snap_corpus: {name} ({} bytes, {verdict:?})", bytes.len());
        written += 1;
    }
    eprintln!(
        "snap_corpus: wrote {written} corpus entries to {}",
        dir.display()
    );
    ExitCode::SUCCESS
}
