//! `frame_fuzz` — seeded fuzzer for the ERASMUS wire-frame decoder and the
//! hub crash-recovery snapshot codec.
//!
//! Replays the committed regression corpus (`crates/fuzz/corpus/*.bin`,
//! sorted by file name; `snap-*.bin` files exercise the snapshot contract,
//! everything else the frame contract), then runs bounded, seeded
//! generate → mutate → check loops over both formats (see
//! [`erasmus_fuzz::FuzzSession`]). Deterministic: the same `--seed` and
//! `--iterations` reproduce the same inputs in the same order.
//!
//! Usage:
//!
//! ```text
//! frame_fuzz                          # 2000 iterations, seed 42, repo corpus
//! frame_fuzz --iterations 100000      # longer soak
//! frame_fuzz --seed 7                 # different deterministic input stream
//! frame_fuzz --corpus path/to/dir     # replay a different corpus directory
//! frame_fuzz --require-kind-coverage  # fail unless every DecodeErrorKind fired
//! ```
//!
//! Exit codes: 0 — contract held; 1 — contract violation (or a decoder
//! panic, which aborts); 2 — usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use erasmus_core::DecodeErrorKind;
use erasmus_fuzz::{
    check_contract, check_snapshot_contract, ContractViolation, FuzzReport, FuzzSession,
};

struct Options {
    iterations: u64,
    seed: u64,
    corpus: PathBuf,
    require_kind_coverage: bool,
}

fn usage() -> &'static str {
    "usage: frame_fuzz [--iterations N] [--seed N] [--corpus DIR] [--require-kind-coverage]\n\
     \n\
     Replays the regression corpus (snap-*.bin files against the hub\n\
     snapshot codec, the rest against the frame decoder), then fuzzes both\n\
     formats for N seeded iterations each: every input must decode without\n\
     panicking, agree with the format's independent model decoder\n\
     (accept/reject, error kind and offset), re-encode canonically when\n\
     accepted, and never yield a verifying measurement the generator did\n\
     not produce.\n\
     --require-kind-coverage additionally fails the run unless every\n\
     DecodeErrorKind was observed at least once (corpus included)."
}

/// The committed corpus lives next to this crate regardless of the
/// invocation directory.
fn default_corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

fn parse_args() -> Result<Options, String> {
    let mut options = Options {
        iterations: 2_000,
        seed: 42,
        corpus: default_corpus_dir(),
        require_kind_coverage: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value_for = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--iterations" => {
                options.iterations = value_for("--iterations")?
                    .parse::<u64>()
                    .map_err(|e| format!("invalid --iterations value: {e}"))?;
            }
            "--seed" => {
                options.seed = value_for("--seed")?
                    .parse::<u64>()
                    .map_err(|e| format!("invalid --seed value: {e}"))?;
            }
            "--corpus" => options.corpus = PathBuf::from(value_for("--corpus")?),
            "--require-kind-coverage" => options.require_kind_coverage = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(options)
}

/// Replays every `*.bin` file of the corpus directory, name-sorted so runs
/// are order-stable across filesystems.
fn replay_corpus(dir: &PathBuf, report: &mut FuzzReport) -> Result<usize, String> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read corpus directory {}: {e}", dir.display()))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|path| path.extension().is_some_and(|ext| ext == "bin"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!(
            "corpus directory {} contains no .bin files",
            dir.display()
        ));
    }
    for path in &paths {
        let bytes =
            std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        // Snapshot corpus entries carry a `snap-` name prefix; everything
        // else is a frame. The two formats cannot be told apart by content
        // alone on purpose (the snapshot magic is an invalid batch count).
        let is_snapshot = path
            .file_name()
            .and_then(|name| name.to_str())
            .is_some_and(|name| name.starts_with("snap-"));
        let checked = if is_snapshot {
            check_snapshot_contract(&bytes)
        } else {
            check_contract(&bytes)
        };
        match checked {
            Ok(verdict) => report.record(&verdict),
            Err(violation) => {
                return Err(format!(
                    "corpus file {} violates the contract\n{violation}",
                    path.display()
                ));
            }
        }
    }
    Ok(paths.len())
}

fn print_histogram(report: &FuzzReport) {
    println!(
        "frame_fuzz: {} inputs: {} accepted, {} rejected",
        report.iterations,
        report.accepted,
        report.rejected_total()
    );
    for (kind, count) in DecodeErrorKind::ALL.iter().zip(&report.rejected) {
        println!("frame_fuzz:   {kind}: {count}");
    }
}

fn main() -> ExitCode {
    let options = match parse_args() {
        Ok(options) => options,
        Err(message) => {
            if !message.is_empty() {
                eprintln!("frame_fuzz: {message}");
            }
            eprintln!("{}", usage());
            return if message.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            };
        }
    };

    let mut report = FuzzReport::default();

    match replay_corpus(&options.corpus, &mut report) {
        Ok(count) => eprintln!(
            "frame_fuzz: replayed {count} corpus frames from {}",
            options.corpus.display()
        ),
        Err(message) => {
            eprintln!("frame_fuzz: {message}");
            return ExitCode::from(if message.contains("violates") { 1 } else { 2 });
        }
    }

    eprintln!(
        "frame_fuzz: fuzzing {} frame + {} snapshot iterations (seed {}) ...",
        options.iterations, options.iterations, options.seed
    );
    let mut session = FuzzSession::new(options.seed);
    let frame_loop: Result<FuzzReport, ContractViolation> = session.run(options.iterations);
    let snapshot_loop = frame_loop.and_then(|frames| {
        session
            .run_snapshots(options.iterations)
            .map(|snapshots| (frames, snapshots))
    });
    match snapshot_loop {
        Ok((frames, snapshots)) => {
            for fuzzed in [frames, snapshots] {
                report.iterations += fuzzed.iterations;
                report.accepted += fuzzed.accepted;
                for (total, count) in report.rejected.iter_mut().zip(&fuzzed.rejected) {
                    *total += count;
                }
            }
        }
        Err(violation) => {
            eprintln!("frame_fuzz: {violation}");
            return ExitCode::FAILURE;
        }
    }

    print_histogram(&report);

    if options.require_kind_coverage {
        let missing = report.missing_kinds();
        if !missing.is_empty() {
            eprintln!(
                "frame_fuzz: kind coverage incomplete, never saw: {}",
                missing
                    .iter()
                    .map(|kind| format!("{kind:?}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            return ExitCode::FAILURE;
        }
        eprintln!(
            "frame_fuzz: all {} rejection kinds covered",
            DecodeErrorKind::ALL.len()
        );
    }

    ExitCode::SUCCESS
}
